//! `ObsSession`: flag-driven lifecycle for one instrumented run.
//!
//! Binaries construct one session from their `--trace` / `--metrics-out`
//! flags before doing any work; if either flag is present the global
//! registry is armed. On drop (or explicit [`ObsSession::finish`]) the
//! session snapshots the registry and span buffer and exports: the trace
//! goes to **stderr** — stdout stays byte-identical to an uninstrumented
//! run, which the golden snapshot tests rely on — and `--metrics-out`
//! writes the JSON-lines form to a file.

use crate::export::{export_json_lines, export_text};
use std::path::PathBuf;

/// Trace rendering requested by `--trace`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    Text,
    Json,
}

impl TraceFormat {
    pub fn parse(s: &str) -> Result<TraceFormat, String> {
        match s {
            "text" => Ok(TraceFormat::Text),
            "json" => Ok(TraceFormat::Json),
            other => Err(format!(
                "invalid --trace format {other:?} (expected \"text\" or \"json\")"
            )),
        }
    }
}

/// RAII observability session; exports on drop.
pub struct ObsSession {
    trace: Option<TraceFormat>,
    metrics_out: Option<PathBuf>,
    armed: bool,
}

impl ObsSession {
    /// Build a session from CLI flag values; arms the registry when either
    /// flag is present. Errors on an unknown trace format.
    pub fn from_flags(trace: Option<&str>, metrics_out: Option<&str>) -> Result<ObsSession, String> {
        let trace = trace.map(TraceFormat::parse).transpose()?;
        let metrics_out = metrics_out.map(PathBuf::from);
        let armed = trace.is_some() || metrics_out.is_some();
        if armed {
            crate::set_enabled(true);
        }
        Ok(ObsSession {
            trace,
            metrics_out,
            armed,
        })
    }

    /// Whether this session armed the registry.
    pub fn active(&self) -> bool {
        self.armed
    }

    /// Export now instead of at drop.
    pub fn finish(mut self) {
        self.flush();
    }

    fn flush(&mut self) {
        if !self.armed {
            return;
        }
        self.armed = false;
        let snapshot = crate::registry().snapshot();
        let events = crate::events_snapshot();
        match self.trace {
            Some(TraceFormat::Text) => eprint!("{}", export_text(&snapshot, &events)),
            Some(TraceFormat::Json) => eprint!("{}", export_json_lines(&snapshot, &events)),
            None => {}
        }
        if let Some(path) = &self.metrics_out {
            let doc = export_json_lines(&snapshot, &events);
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("wl-obs: failed to write {}: {e}", path.display());
            }
        }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parse_accepts_known_rejects_unknown() {
        assert_eq!(TraceFormat::parse("text"), Ok(TraceFormat::Text));
        assert_eq!(TraceFormat::parse("json"), Ok(TraceFormat::Json));
        assert!(TraceFormat::parse("xml").is_err());
    }

    #[test]
    fn no_flags_is_inert() {
        let session = ObsSession::from_flags(None, None).unwrap();
        assert!(!session.active());
    }

    #[test]
    fn bad_format_is_an_error() {
        assert!(ObsSession::from_flags(Some("yaml"), None).is_err());
    }
}
