//! Exporters: human-readable text and line-delimited JSON.
//!
//! The JSON-lines form is the machine surface (`--trace json`,
//! `--metrics-out`): one object per line, integer nanosecond timestamps,
//! validated by [`crate::check_trace`]. The text form aggregates span
//! durations per name for quick eyeballing (`--trace text`).

use crate::json::escape_str;
use crate::registry::MetricsSnapshot;
use crate::span::{SpanEvent, SpanEventKind};
use std::collections::BTreeMap;

/// Aggregate of all closed spans sharing a name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanTotal {
    pub count: u64,
    pub total_ns: u64,
    pub panicked: u64,
}

/// Fold raw span events into per-name totals (per-thread LIFO matching;
/// spans still open at snapshot time are ignored).
pub fn span_totals(events: &[SpanEvent]) -> BTreeMap<&'static str, SpanTotal> {
    let mut stacks: BTreeMap<u32, Vec<(&'static str, u64)>> = BTreeMap::new();
    let mut totals: BTreeMap<&'static str, SpanTotal> = BTreeMap::new();
    for ev in events {
        let stack = stacks.entry(ev.thread).or_default();
        match ev.kind {
            SpanEventKind::Enter => stack.push((ev.name, ev.ts_ns)),
            SpanEventKind::Exit => {
                if let Some((name, start)) = stack.pop() {
                    if name == ev.name {
                        let t = totals.entry(name).or_default();
                        t.count += 1;
                        t.total_ns += ev.ts_ns.saturating_sub(start);
                        t.panicked += u64::from(ev.panicked);
                    }
                }
            }
        }
    }
    totals
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Human-readable report of metrics and aggregated spans.
pub fn export_text(snapshot: &MetricsSnapshot, events: &[SpanEvent]) -> String {
    let mut out = String::new();
    out.push_str("== wl-obs report ==\n");

    let totals = span_totals(events);
    if !totals.is_empty() {
        out.push_str("spans (aggregated per name):\n");
        for (name, t) in &totals {
            out.push_str(&format!(
                "  {name:<44} count={:<6} total={}{}\n",
                t.count,
                fmt_ns(t.total_ns),
                if t.panicked > 0 {
                    format!(" panicked={}", t.panicked)
                } else {
                    String::new()
                }
            ));
        }
    }
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snapshot.counters {
            out.push_str(&format!("  {name:<44} {v}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &snapshot.gauges {
            out.push_str(&format!("  {name:<44} {v}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snapshot.histograms {
            if h.count == 0 {
                out.push_str(&format!("  {name:<44} count=0\n"));
            } else {
                out.push_str(&format!(
                    "  {name:<44} count={} sum={} mean={:.2} min={} max={} p50<={} p99<={}\n",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.min,
                    h.max,
                    h.quantile(0.5),
                    h.quantile(0.99),
                ));
            }
        }
    }
    let dropped = crate::span::events_dropped();
    if dropped > 0 {
        out.push_str(&format!("span enters dropped at buffer cap: {dropped}\n"));
    }
    out
}

/// Line-delimited JSON: a meta header, then span events in record order,
/// then one line per metric. Timestamps are integer nanoseconds.
pub fn export_json_lines(snapshot: &MetricsSnapshot, events: &[SpanEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"format\":\"wl-obs\",\"version\":1,\"span_events\":{},\"events_dropped\":{}}}\n",
        events.len(),
        crate::span::events_dropped(),
    ));
    for ev in events {
        let event = match ev.kind {
            SpanEventKind::Enter => "enter",
            SpanEventKind::Exit => "exit",
        };
        out.push_str(&format!(
            "{{\"type\":\"span\",\"event\":\"{event}\",\"name\":\"{}\",\"ts_ns\":{},\"thread\":{},\"depth\":{}{}}}\n",
            escape_str(ev.name),
            ev.ts_ns,
            ev.thread,
            ev.depth,
            if ev.kind == SpanEventKind::Exit {
                format!(",\"panicked\":{}", ev.panicked)
            } else {
                String::new()
            },
        ));
    }
    for (name, v) in &snapshot.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}\n",
            escape_str(name)
        ));
    }
    for (name, v) in &snapshot.gauges {
        out.push_str(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}\n",
            escape_str(name)
        ));
    }
    for (name, h) in &snapshot.histograms {
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}\n",
            escape_str(name),
            h.count,
            h.sum,
            if h.count == 0 { 0 } else { h.min },
            h.max,
            h.quantile(0.5),
            h.quantile(0.99),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HistogramSnapshot;
    use crate::span::SpanEventKind::{Enter, Exit};

    fn ev(
        name: &'static str,
        kind: SpanEventKind,
        ts_ns: u64,
        thread: u32,
        depth: u16,
    ) -> SpanEvent {
        SpanEvent {
            name,
            kind,
            ts_ns,
            thread,
            depth,
            panicked: false,
        }
    }

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            ev("outer", Enter, 0, 0, 0),
            ev("inner", Enter, 10, 0, 1),
            ev("other", Enter, 12, 1, 0),
            ev("other", Exit, 30, 1, 0),
            ev("inner", Exit, 40, 0, 1),
            ev("outer", Exit, 100, 0, 0),
        ]
    }

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("engine.cache.hit".into(), 3)],
            gauges: vec![("pool.threads".into(), 8)],
            histograms: vec![(
                "mds.iters".into(),
                HistogramSnapshot {
                    count: 2,
                    sum: 30,
                    min: 10,
                    max: 20,
                    buckets: {
                        let mut b = [0u64; crate::HIST_BUCKETS];
                        b[4] = 1;
                        b[5] = 1;
                        b
                    },
                },
            )],
        }
    }

    #[test]
    fn span_totals_match_interleaved_threads() {
        let totals = span_totals(&sample_events());
        assert_eq!(totals["outer"], SpanTotal { count: 1, total_ns: 100, panicked: 0 });
        assert_eq!(totals["inner"].total_ns, 30);
        assert_eq!(totals["other"].total_ns, 18);
    }

    #[test]
    fn text_export_mentions_every_metric() {
        let text = export_text(&sample_snapshot(), &sample_events());
        for needle in ["engine.cache.hit", "pool.threads", "mds.iters", "outer", "count=2"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn json_lines_pass_the_checker() {
        let doc = export_json_lines(&sample_snapshot(), &sample_events());
        let stats = crate::check_trace(&doc).expect("exporter output must validate");
        assert_eq!(stats.span_events, 6);
        assert_eq!(stats.metrics, 3);
        assert_eq!(stats.threads, 2);
    }

    #[test]
    fn every_json_line_parses_individually() {
        let doc = export_json_lines(&sample_snapshot(), &sample_events());
        for line in doc.lines() {
            crate::parse_json(line).unwrap();
        }
    }
}
