//! Global metric registry: interned counters, gauges and histograms.
//!
//! Interning goes through a `Mutex<BTreeMap>` once per call site (the macros
//! cache the returned `&'static` handle in a `OnceLock`), after which every
//! update is a relaxed atomic RMW — no locks on the hot path.

use crate::shard::Shard;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of histogram buckets: bucket `i` holds values whose bit length is
/// `i` (bucket 0 is exactly zero), so `u64::MAX` lands in bucket 64.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, otherwise the value's bit length.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Monotone event counter.
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed level.
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log2-bucketed histogram with exact count/sum and min/max.
///
/// All fields update with relaxed atomics; counts and sums wrap on overflow
/// (matching [`crate::HistData`] so shard flushes agree with direct records).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]. `min` is `u64::MAX` when empty.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile from the log2 buckets: the upper bound of the
    /// first bucket whose cumulative count reaches `q * count`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(*b);
            if cum >= target {
                // Bucket i holds values of bit length i: upper bound 2^i - 1.
                return if i == 0 { 0 } else { (1u64 << i.min(63)) - 1 + u64::from(i == 64) };
            }
        }
        self.max
    }
}

/// Process-wide metric registry. Handles returned by the intern methods are
/// `&'static` (leaked once per name) and safe to cache forever.
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn counter(&self, name: &'static str) -> &'static Counter {
        self.counters
            .lock()
            .unwrap()
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter(AtomicU64::new(0)))))
    }

    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        self.gauges
            .lock()
            .unwrap()
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Gauge(AtomicI64::new(0)))))
    }

    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        self.histograms
            .lock()
            .unwrap()
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    /// Fold a per-thread [`Shard`] into the registry. Counter adds and
    /// histogram merges are commutative, so flush order across workers does
    /// not affect totals.
    pub fn flush_shard(&self, shard: &Shard) {
        for (name, delta) in shard.counters() {
            self.counter(name).add(*delta);
        }
        for (name, data) in shard.hists() {
            if data.count == 0 {
                continue;
            }
            let h = self.histogram(name);
            h.count.fetch_add(data.count, Ordering::Relaxed);
            h.sum.fetch_add(data.sum, Ordering::Relaxed);
            h.min.fetch_min(data.min, Ordering::Relaxed);
            h.max.fetch_max(data.max, Ordering::Relaxed);
            for (i, b) in data.buckets.iter().enumerate() {
                if *b != 0 {
                    h.buckets[i].fetch_add(*b, Ordering::Relaxed);
                }
            }
        }
    }

    /// Sorted point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(n, c)| (n.to_string(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(n, g)| (n.to_string(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(n, h)| (n.to_string(), h.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of the registry, name-sorted within each kind.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Current value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Histogram snapshot by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn counter_interning_returns_same_handle() {
        let a = registry().counter("obs.test.intern") as *const Counter;
        let b = registry().counter("obs.test.intern") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = registry().histogram("obs.test.hist_basic");
        let before = h.snapshot();
        h.record(0);
        h.record(7);
        h.record(100);
        let after = h.snapshot();
        assert_eq!(after.count - before.count, 3);
        assert_eq!(after.sum - before.sum, 107);
        assert_eq!(after.min, 0);
        assert!(after.max >= 100);
        assert!(after.quantile(1.0) >= 100);
    }

    #[test]
    fn snapshot_counter_lookup() {
        registry().counter("obs.test.lookup").add(5);
        let snap = registry().snapshot();
        assert!(snap.counter("obs.test.lookup") >= 5);
        assert_eq!(snap.counter("obs.test.never_registered"), 0);
    }
}
