//! Hierarchical spans with monotonic integer timestamps.
//!
//! Timestamps are nanoseconds since a process-wide `Instant` epoch, so they
//! are monotone per thread (and integer, avoiding float-comparison traps in
//! the JSON trace). Each thread keeps only a depth counter; guard drop order
//! (reverse of construction, even during unwinding) guarantees LIFO nesting,
//! and an exit recorded while unwinding is flagged `panicked` so traces from
//! a crashed `wl-par` task stay balanced.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Soft cap on buffered span events. Enters past the cap are dropped (and
/// counted); exits of already-recorded enters always land so the buffer
/// never holds an unbalanced trace.
pub const EVENT_CAP: usize = 1 << 16;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanEventKind {
    Enter,
    Exit,
}

#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    pub name: &'static str,
    pub kind: SpanEventKind,
    /// Nanoseconds since the process epoch (set when the registry is armed).
    pub ts_ns: u64,
    /// Dense per-process thread id (order of first instrumentation use).
    pub thread: u32,
    /// Nesting depth at enter time (0 = top level).
    pub depth: u16,
    /// True when the exit was recorded during a panic unwind.
    pub panicked: bool,
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

pub(crate) fn init_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_ID: u32 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// This thread's dense observability id.
pub fn current_thread_id() -> u32 {
    THREAD_ID.with(|t| *t)
}

static EVENTS: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn record_enter(ev: SpanEvent) -> bool {
    let mut events = EVENTS.lock().unwrap();
    if events.len() >= EVENT_CAP {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    events.push(ev);
    true
}

fn record_exit(ev: SpanEvent) {
    // Called only for recorded enters; pushing past EVENT_CAP is bounded by
    // the number of spans open when the cap was hit.
    EVENTS.lock().unwrap().push(ev);
}

/// Copy of the buffered span events, in global record order (per-thread
/// timestamp order is guaranteed; cross-thread order is best-effort).
pub fn events_snapshot() -> Vec<SpanEvent> {
    EVENTS.lock().unwrap().clone()
}

/// Number of span enters dropped at the buffer cap.
pub fn events_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clear the event buffer (session/test helper). Does not touch open spans:
/// their exits will appear without matching enters, so only call between
/// top-level operations.
pub fn reset_events() {
    EVENTS.lock().unwrap().clear();
}

/// RAII span: emits Enter on construction (when enabled) and Exit on drop.
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    active: bool,
    recorded: bool,
}

impl SpanGuard {
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                name,
                start_ns: 0,
                active: false,
                recorded: false,
            };
        }
        Self::enter_armed(name)
    }

    fn enter_armed(name: &'static str) -> SpanGuard {
        let ts_ns = now_ns();
        let thread = current_thread_id();
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        });
        let recorded = record_enter(SpanEvent {
            name,
            kind: SpanEventKind::Enter,
            ts_ns,
            thread,
            depth,
            panicked: false,
        });
        SpanGuard {
            name,
            start_ns: ts_ns,
            active: true,
            recorded,
        }
    }

    /// Nanoseconds since this span opened (0 when observability was off at
    /// enter time).
    pub fn elapsed_ns(&self) -> u64 {
        if self.active {
            now_ns().saturating_sub(self.start_ns)
        } else {
            0
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let depth = DEPTH.with(|d| {
            let v = d.get().saturating_sub(1);
            d.set(v);
            v
        });
        if self.recorded {
            record_exit(SpanEvent {
                name: self.name,
                kind: SpanEventKind::Exit,
                ts_ns: now_ns(),
                thread: current_thread_id(),
                depth,
                panicked: std::thread::panicking(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Events recorded by the current thread only — the event buffer is
    /// shared with concurrently running tests.
    fn my_events() -> Vec<SpanEvent> {
        let me = current_thread_id();
        events_snapshot()
            .into_iter()
            .filter(|e| e.thread == me)
            .collect()
    }

    #[test]
    fn nested_spans_balance_with_monotone_timestamps() {
        crate::set_enabled(true);
        let before = my_events().len();
        {
            let _outer = crate::span!("obs.test.outer");
            let _inner = crate::span!("obs.test.inner");
        }
        let events: Vec<SpanEvent> = my_events().into_iter().skip(before).collect();
        let names: Vec<(&str, SpanEventKind)> =
            events.iter().map(|e| (e.name, e.kind)).collect();
        assert_eq!(
            names,
            vec![
                ("obs.test.outer", SpanEventKind::Enter),
                ("obs.test.inner", SpanEventKind::Enter),
                ("obs.test.inner", SpanEventKind::Exit),
                ("obs.test.outer", SpanEventKind::Exit),
            ]
        );
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
        assert_eq!(events[0].depth, events[3].depth);
        assert_eq!(events[1].depth, events[2].depth);
        assert!(!events.iter().any(|e| e.panicked));
    }

    #[test]
    fn panicking_span_still_exits_balanced() {
        crate::set_enabled(true);
        let handle = std::thread::spawn(|| {
            let _span = crate::span!("obs.test.panics");
            panic!("boom");
        });
        assert!(handle.join().is_err());
        let events: Vec<SpanEvent> = events_snapshot()
            .into_iter()
            .filter(|e| e.name == "obs.test.panics")
            .collect();
        assert!(!events.is_empty());
        let enters = events
            .iter()
            .filter(|e| e.kind == SpanEventKind::Enter)
            .count();
        let exits = events
            .iter()
            .filter(|e| e.kind == SpanEventKind::Exit)
            .count();
        assert_eq!(enters, exits, "panicking span left the stack unbalanced");
        assert!(events
            .iter()
            .any(|e| e.kind == SpanEventKind::Exit && e.panicked));
    }

    #[test]
    fn disabled_guard_records_nothing() {
        // Filter by a name no other test uses, so this is safe even with the
        // registry enabled by concurrent tests; the guard below is built
        // through the raw constructor with enabled() unknown, so check only
        // that a disabled guard is inert.
        let guard = SpanGuard {
            name: "obs.test.disabled",
            start_ns: 0,
            active: false,
            recorded: false,
        };
        assert_eq!(guard.elapsed_ns(), 0);
        drop(guard);
        assert!(!events_snapshot()
            .iter()
            .any(|e| e.name == "obs.test.disabled"));
    }
}
