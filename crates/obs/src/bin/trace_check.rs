//! `trace-check`: validate a wl-obs JSON-lines trace.
//!
//! Usage: `trace-check [FILE]` — reads FILE (or stdin when absent or `-`),
//! runs the well-formedness checker, prints a one-line summary, and exits
//! nonzero on the first violation. Used by `scripts/ci.sh` to gate the
//! `wl coplot --trace json` smoke run.

use std::io::Read;

fn main() {
    let arg = std::env::args().nth(1);
    let input = match arg.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("trace-check: failed to read stdin: {e}");
                std::process::exit(2);
            }
            buf
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace-check: failed to read {path}: {e}");
                std::process::exit(2);
            }
        },
    };
    match wl_obs::check_trace(&input) {
        Ok(stats) => {
            println!(
                "trace OK: {} lines, {} span events, {} metrics, {} threads",
                stats.lines, stats.span_events, stats.metrics, stats.threads
            );
        }
        Err(e) => {
            eprintln!("trace INVALID: {e}");
            std::process::exit(1);
        }
    }
}
