//! `wl-obs`: dependency-free observability for the workload-analysis suite.
//!
//! The pipeline (normalize → dissimilarity → MDS → arrows) plus the estimator
//! kernels are instrumented through this crate: hierarchical [`SpanGuard`]
//! spans with monotonic integer timestamps, and a process-wide [`Registry`] of
//! counters, gauges and log2-bucketed histograms. Everything is gated on a
//! single relaxed [`AtomicBool`]: when observability is off (the default) each
//! instrumentation site costs one atomic load and a predictable branch, so the
//! bit-identity and bench guarantees of the numeric code are untouched.
//!
//! Worker threads that must not contend on the global registry (the `wl-par`
//! pool) record into a local [`Shard`] and flush once at the end; shard merges
//! are associative and order-independent, so metric totals do not depend on
//! worker interleaving.
//!
//! Output goes through [`ObsSession`], which arms the registry from
//! `--trace <text|json>` / `--metrics-out <path>` flags and exports on drop.
//! The JSON-lines format is validated by [`check_trace`] (also available as
//! the `trace-check` binary): balanced per-thread span nesting, monotone
//! per-thread timestamps, unique metric names.

mod check;
mod export;
mod json;
mod registry;
mod session;
mod shard;
mod span;

pub use check::{check_trace, TraceStats};
pub use export::{export_json_lines, export_text, span_totals, SpanTotal};
pub use json::{escape_str, parse_json, JsonValue};
pub use registry::{
    bucket_index, registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
    Registry, HIST_BUCKETS,
};
pub use session::{ObsSession, TraceFormat};
pub use shard::{HistData, Shard};
pub use span::{
    current_thread_id, events_dropped, events_snapshot, reset_events, SpanEvent, SpanEventKind,
    SpanGuard,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the registry is armed. Instrumentation macros check this first;
/// the relaxed load is the entire disabled-path cost.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arm or disarm the global registry. Arming also pins the span-timestamp
/// epoch so `ts_ns` values are comparable across threads.
pub fn set_enabled(on: bool) {
    if on {
        span::init_epoch();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Add `delta` to the named counter. The name must be a fixed `&'static str`
/// per call site — the interned handle is cached in a call-site `OnceLock`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {{
        if $crate::enabled() {
            static __WL_OBS_HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            __WL_OBS_HANDLE
                .get_or_init(|| $crate::registry().counter($name))
                .add($delta as u64);
        }
    }};
}

/// Set the named gauge to an `i64` value (last write wins).
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $value:expr) => {{
        if $crate::enabled() {
            static __WL_OBS_HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> =
                ::std::sync::OnceLock::new();
            __WL_OBS_HANDLE
                .get_or_init(|| $crate::registry().gauge($name))
                .set($value as i64);
        }
    }};
}

/// Record one `u64` observation into the named histogram.
#[macro_export]
macro_rules! hist_record {
    ($name:expr, $value:expr) => {{
        if $crate::enabled() {
            static __WL_OBS_HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            __WL_OBS_HANDLE
                .get_or_init(|| $crate::registry().histogram($name))
                .record($value as u64);
        }
    }};
}

/// Open a hierarchical span; the returned guard closes it on drop (including
/// during unwinding, where the exit event is flagged `panicked`).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}
