//! Well-formedness checker for the `wl-obs` JSON-lines trace format.
//!
//! Rules enforced (the golden-trace test and the `trace-check` binary run
//! this over real `--trace json` output):
//! - every non-empty line is a standalone JSON object with a `"type"` field;
//! - metric names are unique across counters, gauges and histograms;
//! - span events nest properly per thread (exit name matches the innermost
//!   open enter; nothing left open at end of input);
//! - per-thread timestamps are monotone non-decreasing integers;
//! - a span event's `depth` equals its thread's open-span count at that
//!   point.

use crate::json::{parse_json, JsonValue};
use std::collections::{BTreeMap, BTreeSet};

/// Summary of a validated trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Non-empty lines checked.
    pub lines: usize,
    /// Span enter/exit events seen.
    pub span_events: usize,
    /// Distinct metric lines (counter + gauge + histogram).
    pub metrics: usize,
    /// Distinct threads that emitted span events.
    pub threads: usize,
}

fn field<'a>(obj: &'a JsonValue, line_no: usize, key: &str) -> Result<&'a JsonValue, String> {
    obj.get(key)
        .ok_or_else(|| format!("line {line_no}: missing field {key:?}"))
}

fn str_field(obj: &JsonValue, line_no: usize, key: &str) -> Result<String, String> {
    field(obj, line_no, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("line {line_no}: field {key:?} is not a string"))
}

fn u64_field(obj: &JsonValue, line_no: usize, key: &str) -> Result<u64, String> {
    field(obj, line_no, key)?
        .as_u64()
        .ok_or_else(|| format!("line {line_no}: field {key:?} is not a non-negative integer"))
}

/// Validate a JSON-lines trace; `Ok` carries summary statistics, `Err` the
/// first violation found (with its 1-based line number).
pub fn check_trace(input: &str) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    let mut metric_names: BTreeSet<String> = BTreeSet::new();
    // Per-thread stack of open span names, and last timestamp seen.
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();

    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        stats.lines += 1;
        let obj = parse_json(line).map_err(|e| format!("line {line_no}: invalid JSON: {e}"))?;
        if !matches!(obj, JsonValue::Object(_)) {
            return Err(format!("line {line_no}: not a JSON object"));
        }
        let kind = str_field(&obj, line_no, "type")?;
        match kind.as_str() {
            "meta" => {}
            "counter" | "gauge" | "histogram" => {
                let name = str_field(&obj, line_no, "name")?;
                if !metric_names.insert(name.clone()) {
                    return Err(format!("line {line_no}: duplicate metric name {name:?}"));
                }
                match kind.as_str() {
                    "histogram" => {
                        u64_field(&obj, line_no, "count")?;
                        u64_field(&obj, line_no, "sum")?;
                    }
                    "gauge" => {
                        field(&obj, line_no, "value")?
                            .as_f64()
                            .filter(|v| v.fract() == 0.0)
                            .ok_or_else(|| {
                                format!("line {line_no}: gauge value is not an integer")
                            })?;
                    }
                    _ => {
                        u64_field(&obj, line_no, "value")?;
                    }
                }
                stats.metrics += 1;
            }
            "span" => {
                let event = str_field(&obj, line_no, "event")?;
                let name = str_field(&obj, line_no, "name")?;
                let ts = u64_field(&obj, line_no, "ts_ns")?;
                let thread = u64_field(&obj, line_no, "thread")?;
                let depth = u64_field(&obj, line_no, "depth")?;

                if let Some(prev) = last_ts.get(&thread) {
                    if ts < *prev {
                        return Err(format!(
                            "line {line_no}: thread {thread} timestamp went backwards ({ts} < {prev})"
                        ));
                    }
                }
                last_ts.insert(thread, ts);

                let stack = stacks.entry(thread).or_default();
                match event.as_str() {
                    "enter" => {
                        if depth != stack.len() as u64 {
                            return Err(format!(
                                "line {line_no}: enter depth {depth} but thread {thread} has {} open spans",
                                stack.len()
                            ));
                        }
                        stack.push(name);
                    }
                    "exit" => {
                        let open = stack.pop().ok_or_else(|| {
                            format!(
                                "line {line_no}: exit of {name:?} on thread {thread} with no open span"
                            )
                        })?;
                        if open != name {
                            return Err(format!(
                                "line {line_no}: exit of {name:?} but innermost open span is {open:?}"
                            ));
                        }
                        if depth != stack.len() as u64 {
                            return Err(format!(
                                "line {line_no}: exit depth {depth} but thread {thread} now has {} open spans",
                                stack.len()
                            ));
                        }
                    }
                    other => {
                        return Err(format!("line {line_no}: unknown span event {other:?}"));
                    }
                }
                stats.span_events += 1;
            }
            other => {
                return Err(format!("line {line_no}: unknown line type {other:?}"));
            }
        }
    }

    for (thread, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "thread {thread}: span {open:?} entered but never exited"
            ));
        }
    }
    stats.threads = stacks.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
{\"type\":\"meta\",\"format\":\"wl-obs\",\"version\":1}
{\"type\":\"span\",\"event\":\"enter\",\"name\":\"a\",\"ts_ns\":1,\"thread\":0,\"depth\":0}
{\"type\":\"span\",\"event\":\"enter\",\"name\":\"b\",\"ts_ns\":2,\"thread\":0,\"depth\":1}
{\"type\":\"span\",\"event\":\"exit\",\"name\":\"b\",\"ts_ns\":3,\"thread\":0,\"depth\":1,\"panicked\":false}
{\"type\":\"span\",\"event\":\"exit\",\"name\":\"a\",\"ts_ns\":9,\"thread\":0,\"depth\":0,\"panicked\":false}
{\"type\":\"counter\",\"name\":\"hits\",\"value\":4}
{\"type\":\"gauge\",\"name\":\"threads\",\"value\":-1}
{\"type\":\"histogram\",\"name\":\"iters\",\"count\":2,\"sum\":10,\"min\":3,\"max\":7,\"p50\":3,\"p99\":7}
";

    #[test]
    fn accepts_well_formed_trace() {
        let stats = check_trace(GOOD).unwrap();
        assert_eq!(
            stats,
            TraceStats {
                lines: 8,
                span_events: 4,
                metrics: 3,
                threads: 1
            }
        );
    }

    #[test]
    fn rejects_duplicate_metric_names() {
        let doc = "{\"type\":\"counter\",\"name\":\"x\",\"value\":1}\n{\"type\":\"gauge\",\"name\":\"x\",\"value\":2}\n";
        let err = check_trace(doc).unwrap_err();
        assert!(err.contains("duplicate metric name"), "{err}");
    }

    #[test]
    fn rejects_unbalanced_spans() {
        let doc = "{\"type\":\"span\",\"event\":\"enter\",\"name\":\"a\",\"ts_ns\":1,\"thread\":0,\"depth\":0}\n";
        let err = check_trace(doc).unwrap_err();
        assert!(err.contains("never exited"), "{err}");
    }

    #[test]
    fn rejects_mismatched_exit_name() {
        let doc = "\
{\"type\":\"span\",\"event\":\"enter\",\"name\":\"a\",\"ts_ns\":1,\"thread\":0,\"depth\":0}
{\"type\":\"span\",\"event\":\"exit\",\"name\":\"b\",\"ts_ns\":2,\"thread\":0,\"depth\":0}
";
        let err = check_trace(doc).unwrap_err();
        assert!(err.contains("innermost open span"), "{err}");
    }

    #[test]
    fn rejects_backwards_timestamps_per_thread() {
        let doc = "\
{\"type\":\"span\",\"event\":\"enter\",\"name\":\"a\",\"ts_ns\":5,\"thread\":0,\"depth\":0}
{\"type\":\"span\",\"event\":\"exit\",\"name\":\"a\",\"ts_ns\":4,\"thread\":0,\"depth\":0}
";
        let err = check_trace(doc).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
    }

    #[test]
    fn allows_interleaved_threads_with_independent_clocks() {
        let doc = "\
{\"type\":\"span\",\"event\":\"enter\",\"name\":\"a\",\"ts_ns\":100,\"thread\":0,\"depth\":0}
{\"type\":\"span\",\"event\":\"enter\",\"name\":\"b\",\"ts_ns\":5,\"thread\":1,\"depth\":0}
{\"type\":\"span\",\"event\":\"exit\",\"name\":\"b\",\"ts_ns\":6,\"thread\":1,\"depth\":0}
{\"type\":\"span\",\"event\":\"exit\",\"name\":\"a\",\"ts_ns\":101,\"thread\":0,\"depth\":0}
";
        assert_eq!(check_trace(doc).unwrap().threads, 2);
    }

    #[test]
    fn rejects_invalid_json_with_line_number() {
        let doc = "{\"type\":\"meta\"}\nnot json\n";
        let err = check_trace(doc).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn rejects_wrong_depth() {
        let doc = "{\"type\":\"span\",\"event\":\"enter\",\"name\":\"a\",\"ts_ns\":1,\"thread\":0,\"depth\":3}\n";
        let err = check_trace(doc).unwrap_err();
        assert!(err.contains("depth"), "{err}");
    }

    #[test]
    fn empty_input_is_valid() {
        assert_eq!(check_trace("").unwrap(), TraceStats::default());
    }
}
