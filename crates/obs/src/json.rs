//! Minimal JSON parser and string escaper.
//!
//! Just enough of RFC 8259 for the trace checker to validate `wl-obs`
//! JSON-lines output (and for tests to inspect it) without an external
//! dependency. Numbers parse to `f64`, which is exact for the integer
//! timestamps the exporter emits (< 2^53 ns ≈ 104 days of process time).

use std::collections::BTreeMap;

#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON document (no surrounding quotes).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_trace_line_shapes() {
        let v = parse_json(
            r#"{"type":"span","event":"enter","name":"engine.run","ts_ns":12345,"thread":0,"depth":0}"#,
        )
        .unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("span"));
        assert_eq!(v.get("ts_ns").and_then(JsonValue::as_u64), Some(12345));
        assert_eq!(v.get("depth").and_then(JsonValue::as_u64), Some(0));
    }

    #[test]
    fn parses_nested_values() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":[true,false]},"e":"x\ny"}"#)
            .unwrap();
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(2.5),
                JsonValue::Number(-300.0)
            ]))
        );
        assert_eq!(
            v.get("e").and_then(JsonValue::as_str),
            Some("x\ny")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{\"a\"1}",
            "nul",
            "01a",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_specials() {
        let s = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{e9}";
        let doc = format!("\"{}\"", escape_str(s));
        assert_eq!(
            parse_json(&doc).unwrap(),
            JsonValue::String(s.to_string())
        );
    }

    proptest! {
        /// Any string survives escape → parse.
        #[test]
        fn escape_round_trips_arbitrary(s in ".*") {
            let doc = format!("\"{}\"", escape_str(&s));
            prop_assert_eq!(parse_json(&doc).unwrap(), JsonValue::String(s));
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_never_panics(s in ".*") {
            let _ = parse_json(&s);
        }
    }
}
