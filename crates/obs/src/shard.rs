//! Per-thread metric shards.
//!
//! Pool workers (`wl-par`) record into a private `Shard` and flush once at
//! the end of their claim loop, so instrumentation adds no cross-thread
//! contention inside the work loop. Merges use the same wrapping arithmetic
//! as the atomic registry, which makes them associative, commutative and
//! order-independent — totals are identical for any worker interleaving.

use crate::registry::{bucket_index, HIST_BUCKETS};
use std::collections::BTreeMap;

/// Plain-value histogram state, the shard-local mirror of
/// [`crate::Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistData {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistData {
    pub fn record(&mut self, v: u64) {
        self.count = self.count.wrapping_add(1);
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] = self.buckets[bucket_index(v)].wrapping_add(1);
    }

    pub fn merge(&mut self, other: &HistData) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, ob) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.wrapping_add(*ob);
        }
    }
}

/// A local batch of counter increments and histogram observations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Shard {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, HistData>,
}

impl Shard {
    pub fn new() -> Self {
        Shard::default()
    }

    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.wrapping_add(delta);
    }

    pub fn hist_record(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    /// Fold `other` into `self`; `a.merge(b)` equals `b.merge(a)` and
    /// merging is associative (see the proptests).
    pub fn merge(&mut self, other: &Shard) {
        for (name, delta) in &other.counters {
            self.counter_add(name, *delta);
        }
        for (name, data) in &other.hists {
            self.hists.entry(name).or_default().merge(data);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    pub fn counters(&self) -> impl Iterator<Item = (&&'static str, &u64)> {
        self.counters.iter()
    }

    pub fn hists(&self) -> impl Iterator<Item = (&&'static str, &HistData)> {
        self.hists.iter()
    }

    /// Add this shard's contents to the global registry. Gated on
    /// [`crate::enabled`] so callers can flush unconditionally.
    pub fn flush(&self) {
        if crate::enabled() && !self.is_empty() {
            crate::registry().flush_shard(self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const NAMES: [&str; 4] = ["a", "b", "c", "d"];

    #[derive(Clone, Debug)]
    enum Op {
        Counter(usize, u64),
        Hist(usize, u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0usize..NAMES.len(), 0u64..=u64::MAX).prop_map(|(i, v)| Op::Counter(i, v)),
            (0usize..NAMES.len(), 0u64..=u64::MAX).prop_map(|(i, v)| Op::Hist(i, v)),
        ]
    }

    fn shard_of(ops: &[Op]) -> Shard {
        let mut s = Shard::new();
        for op in ops {
            match op {
                Op::Counter(i, v) => s.counter_add(NAMES[*i], *v),
                Op::Hist(i, v) => s.hist_record(NAMES[*i], *v),
            }
        }
        s
    }

    proptest! {
        /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        #[test]
        fn merge_is_associative(
            a in proptest::collection::vec(op_strategy(), 0..20),
            b in proptest::collection::vec(op_strategy(), 0..20),
            c in proptest::collection::vec(op_strategy(), 0..20),
        ) {
            let (sa, sb, sc) = (shard_of(&a), shard_of(&b), shard_of(&c));
            let mut left = sa.clone();
            left.merge(&sb);
            left.merge(&sc);
            let mut bc = sb.clone();
            bc.merge(&sc);
            let mut right = sa.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        /// a ⊕ b == b ⊕ a
        #[test]
        fn merge_is_order_independent(
            a in proptest::collection::vec(op_strategy(), 0..30),
            b in proptest::collection::vec(op_strategy(), 0..30),
        ) {
            let (sa, sb) = (shard_of(&a), shard_of(&b));
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            prop_assert_eq!(ab, ba);
        }

        /// Recording all ops into one shard equals recording into split
        /// shards and merging — the property `wl-par` workers rely on.
        #[test]
        fn split_then_merge_equals_sequential(
            ops in proptest::collection::vec(op_strategy(), 0..60),
            cut_at in 0usize..61,
        ) {
            let cut = cut_at.min(ops.len());
            let whole = shard_of(&ops);
            let mut merged = shard_of(&ops[..cut]);
            merged.merge(&shard_of(&ops[cut..]));
            prop_assert_eq!(whole, merged);
        }
    }

    #[test]
    fn empty_merge_is_identity() {
        let mut s = shard_of(&[Op::Counter(0, 3), Op::Hist(1, 9)]);
        let before = s.clone();
        s.merge(&Shard::new());
        assert_eq!(s, before);
    }
}
