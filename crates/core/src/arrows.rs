//! Stage 4: variable arrows.
//!
//! Each variable `j` is drawn as an arrow from the centroid of the map. The
//! direction is chosen so that the correlation between the variable's values
//! `z_j` and the projections of the observation points onto the arrow is
//! maximal; the achieved maximal correlation is the variable's
//! goodness-of-fit measure (the paper removes variables whose correlation is
//! low and re-runs the analysis).
//!
//! The maximization has a closed form. For centered coordinates `P` (n x 2)
//! and direction `w`, `corr(z, P w)` is maximized over `w` by the ordinary
//! least-squares coefficients of `z` on the two coordinates:
//! `w* ∝ Σ_P^{-1} cov(P, z)`, and the maximum equals the multiple
//! correlation coefficient `R`. (Intuition: projecting onto any direction
//! is a linear predictor of `z` from `P`; the best linear predictor is the
//! OLS fit.) A brute-force angle scan in the tests confirms this.

use crate::error::CoplotError;
use wl_linalg::solve::solve2;
use wl_linalg::Matrix;
use wl_stats::corr::pearson;

/// A fitted variable arrow.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrow {
    /// Variable name.
    pub name: String,
    /// Unit direction vector from the centroid.
    pub direction: [f64; 2],
    /// The maximal correlation achieved (stage-4 goodness of fit).
    pub correlation: f64,
}

impl Arrow {
    /// Angle of the arrow in radians, in `(-pi, pi]`.
    pub fn angle(&self) -> f64 {
        self.direction[1].atan2(self.direction[0])
    }

    /// Cosine of the angle between two arrows — approximately the
    /// correlation between their variables, per the paper.
    pub fn cos_angle_with(&self, other: &Arrow) -> f64 {
        self.direction[0] * other.direction[0] + self.direction[1] * other.direction[1]
    }
}

/// Fit one variable's arrow against a configuration.
///
/// `coords` is the `n x 2` MDS output; `z` is the variable's (normalized)
/// column. Returns `None` when the fit is degenerate: constant variable,
/// collinear configuration with no usable component, or `n < 3`.
///
/// # Panics
/// Panics if `z.len() != coords.rows()`; use [`try_fit_arrow`] to get a
/// [`CoplotError`] instead.
pub fn fit_arrow(name: &str, coords: &Matrix, z: &[f64]) -> Option<Arrow> {
    match try_fit_arrow(name, coords, z) {
        Ok(arrow) => Some(arrow),
        Err(CoplotError::DegenerateVariable(_)) => None,
        Err(e) => panic!("{e}"),
    }
}

/// Fit one variable's arrow, reporting every failure as a [`CoplotError`].
///
/// # Errors
/// [`CoplotError::DimensionMismatch`] when `z.len() != coords.rows()`;
/// [`CoplotError::DegenerateVariable`] for the cases where [`fit_arrow`]
/// returns `None`.
pub fn try_fit_arrow(name: &str, coords: &Matrix, z: &[f64]) -> Result<Arrow, CoplotError> {
    if z.len() != coords.rows() {
        return Err(CoplotError::DimensionMismatch {
            context: format!("arrow fit for variable {name:?}"),
            expected: coords.rows(),
            got: z.len(),
        });
    }
    fit_arrow_inner(name, coords, z)
        .ok_or_else(|| CoplotError::DegenerateVariable(name.to_string()))
}

fn fit_arrow_inner(name: &str, coords: &Matrix, z: &[f64]) -> Option<Arrow> {
    let n = z.len();
    if n < 3 {
        return None;
    }
    let nf = n as f64;

    // Centered coordinate columns and variable.
    let mx = (0..n).map(|i| coords[(i, 0)]).sum::<f64>() / nf;
    let my = (0..n).map(|i| coords[(i, 1)]).sum::<f64>() / nf;
    let mz = z.iter().sum::<f64>() / nf;

    let (mut sxx, mut sxy, mut syy, mut sxz, mut syz, mut szz) =
        (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    for i in 0..n {
        let dx = coords[(i, 0)] - mx;
        let dy = coords[(i, 1)] - my;
        let dz = z[i] - mz;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
        sxz += dx * dz;
        syz += dy * dz;
        szz += dz * dz;
    }
    if szz <= 0.0 {
        return None; // constant variable
    }

    // OLS coefficients of z on (x, y): solve [sxx sxy; sxy syy] w = [sxz syz].
    let w = match solve2(sxx, sxy, sxy, syy, [sxz, syz]) {
        Some(w) => w,
        None => {
            // Degenerate (collinear or collapsed) configuration: project
            // onto the principal axis of the point cloud and regress on
            // that single direction.
            let trace = sxx + syy;
            if trace <= 0.0 {
                return None; // all points coincide
            }
            // Dominant eigenvector of [[sxx, sxy], [sxy, syy]].
            let half_diff = (sxx - syy) / 2.0;
            let lambda = trace / 2.0 + (half_diff * half_diff + sxy * sxy).sqrt();
            let (ex, ey) = if sxy.abs() > 1e-300 {
                (lambda - syy, sxy)
            } else if sxx >= syy {
                (1.0, 0.0)
            } else {
                (0.0, 1.0)
            };
            let enorm = (ex * ex + ey * ey).sqrt();
            if enorm <= 0.0 || enorm.is_nan() {
                return None;
            }
            let (ex, ey) = (ex / enorm, ey / enorm);
            // Covariance of z with the principal projection.
            let cov = ex * sxz + ey * syz;
            if cov == 0.0 {
                return None; // z carries no signal along the only axis
            }
            [cov.signum() * ex, cov.signum() * ey]
        }
    };
    let norm = (w[0] * w[0] + w[1] * w[1]).sqrt();
    if norm <= 0.0 || norm.is_nan() || norm.is_infinite() {
        return None;
    }
    let direction = [w[0] / norm, w[1] / norm];

    // The achieved maximum is the multiple correlation
    // R = sqrt(w . [sxz syz] / szz) -- equivalently the Pearson correlation
    // between z and the projections (computed directly for robustness).
    let proj: Vec<f64> = (0..n)
        .map(|i| coords[(i, 0)] * direction[0] + coords[(i, 1)] * direction[1])
        .collect();
    let correlation = pearson(&proj, z);
    if !correlation.is_finite() {
        return None;
    }

    Some(Arrow {
        name: name.to_string(),
        direction,
        correlation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords(points: &[(f64, f64)]) -> Matrix {
        Matrix::from_rows(&points.iter().map(|&(x, y)| vec![x, y]).collect::<Vec<_>>())
    }

    /// Brute-force the best correlation over a fine angle grid.
    fn brute_force_best(coords: &Matrix, z: &[f64]) -> (f64, f64) {
        let n = coords.rows();
        let mut best = (f64::NEG_INFINITY, 0.0);
        for step in 0..3600 {
            let angle = step as f64 * std::f64::consts::PI / 1800.0;
            let (c, s) = (angle.cos(), angle.sin());
            let proj: Vec<f64> = (0..n)
                .map(|i| coords[(i, 0)] * c + coords[(i, 1)] * s)
                .collect();
            let r = pearson(&proj, z);
            if r > best.0 {
                best = (r, angle);
            }
        }
        best
    }

    #[test]
    fn variable_equal_to_x_coordinate_points_along_x() {
        let m = coords(&[(0.0, 0.0), (1.0, 2.0), (2.0, -1.0), (3.0, 1.0)]);
        let z: Vec<f64> = (0..4).map(|i| m[(i, 0)]).collect();
        let a = fit_arrow("x", &m, &z).unwrap();
        assert!((a.correlation - 1.0).abs() < 1e-9);
        // Direction must reproduce z ordering exactly: along +x after
        // accounting for the y-structure. Projection correlation is already
        // checked; also confirm the arrow is closer to +x than to +y.
        assert!(a.direction[0].abs() > a.direction[1].abs());
        assert!(a.direction[0] > 0.0);
    }

    #[test]
    fn closed_form_matches_brute_force() {
        let m = coords(&[
            (0.3, -1.2),
            (1.5, 0.4),
            (-0.7, 0.9),
            (2.2, 1.8),
            (-1.1, -0.6),
            (0.8, 2.5),
        ]);
        let z = [0.2, 1.1, -0.5, 2.8, -1.9, 1.7];
        let a = fit_arrow("v", &m, &z).unwrap();
        let (best_r, best_angle) = brute_force_best(&m, &z);
        assert!(
            (a.correlation - best_r).abs() < 1e-5,
            "closed form {} vs brute force {}",
            a.correlation,
            best_r
        );
        // Angles agree modulo the grid resolution.
        let diff = (a.angle() - best_angle).rem_euclid(2.0 * std::f64::consts::PI);
        let diff = diff.min(2.0 * std::f64::consts::PI - diff);
        assert!(diff < 0.01, "angle diff {diff}");
    }

    #[test]
    fn anti_correlated_variables_point_oppositely() {
        let m = coords(&[(0.0, 0.0), (1.0, 0.5), (2.0, 1.0), (3.0, 1.4), (1.5, 2.0)]);
        let z: Vec<f64> = (0..5).map(|i| m[(i, 0)] + 0.1 * m[(i, 1)]).collect();
        let zneg: Vec<f64> = z.iter().map(|v| -v).collect();
        let a = fit_arrow("z", &m, &z).unwrap();
        let b = fit_arrow("-z", &m, &zneg).unwrap();
        assert!(
            (a.cos_angle_with(&b) + 1.0).abs() < 1e-9,
            "cos = {}",
            a.cos_angle_with(&b)
        );
        assert!((a.correlation - b.correlation).abs() < 1e-9);
    }

    #[test]
    fn correlated_variables_small_angle() {
        let m = coords(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5), (0.5, 2.0), (2.5, 2.5)]);
        let z1: Vec<f64> = (0..5).map(|i| m[(i, 0)] + m[(i, 1)]).collect();
        let z2: Vec<f64> = z1.iter().map(|v| 2.0 * v + 0.3).collect();
        let a = fit_arrow("a", &m, &z1).unwrap();
        let b = fit_arrow("b", &m, &z2).unwrap();
        assert!(a.cos_angle_with(&b) > 0.999);
    }

    #[test]
    fn constant_variable_is_degenerate() {
        let m = coords(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        assert!(fit_arrow("c", &m, &[5.0, 5.0, 5.0]).is_none());
        assert!(matches!(
            try_fit_arrow("c", &m, &[5.0, 5.0, 5.0]).unwrap_err(),
            CoplotError::DegenerateVariable(_)
        ));
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let m = coords(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let err = try_fit_arrow("v", &m, &[1.0, 2.0]).unwrap_err();
        assert!(
            matches!(err, CoplotError::DimensionMismatch { expected: 3, got: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn collinear_configuration_falls_back_to_line() {
        let m = coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let z = [0.0, 1.0, 2.0, 3.0];
        let a = fit_arrow("v", &m, &z).unwrap();
        assert!((a.correlation - 1.0).abs() < 1e-9);
        assert!((a.direction[0].abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unit_direction() {
        let m = coords(&[(0.1, 0.9), (1.2, 0.3), (-0.5, 1.8), (2.0, -0.7)]);
        let z = [1.0, 2.0, 0.5, 3.0];
        let a = fit_arrow("v", &m, &z).unwrap();
        let norm = (a.direction[0].powi(2) + a.direction[1].powi(2)).sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_variable_has_low_correlation() {
        // z varies orthogonally to any linear structure of the config.
        let m = coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let z = [0.0, 1.0, 0.0, 1.0];
        let a = fit_arrow("noise", &m, &z).unwrap();
        assert!(a.correlation.abs() < 0.5);
    }
}
