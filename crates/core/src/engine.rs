//! The staged Co-plot engine: explicit stage traits, intermediate-result
//! caching, and per-stage instrumentation.
//!
//! [`CoplotEngine`] owns the four pipeline stages behind trait objects, so
//! each can be swapped independently:
//!
//! * [`Normalizer`] — raw data to z-scores ([`ZScoreNormalizer`]);
//! * [`DissimilarityStage`] — z-scores to pairwise dissimilarities
//!   ([`MetricDissimilarity`]);
//! * [`Embedder`] — dissimilarities to a planar configuration
//!   ([`NonmetricMdsEmbedder`]);
//! * [`ArrowFitter`] — variable columns to arrows ([`OlsArrowFitter`]).
//!
//! Unlike the one-shot [`crate::pipeline::Coplot`] facade (a thin wrapper
//! over this engine), the engine is stateful: it caches the normalized
//! matrix and the per-variable dissimilarity contributions of the last
//! input, so variable elimination and subset searches re-embed without
//! re-normalizing or recomputing distances from scratch.
//!
//! There is one entry point: [`CoplotEngine::run`] takes the data and a
//! [`Selection`] describing *which* analysis to perform — all variables, an
//! index subset, a cache-only shared subset, or the paper's
//! variable-elimination workflow. The engine takes `&self`: the cache sits
//! behind an `RwLock` and the stage reports behind a `Mutex`, so one engine
//! can serve many concurrent selections (this is what the parallel subset
//! search and the `wl-serve` workers rely on). The pre-redesign entry
//! points (`analyze`, `analyze_selected`, `analyze_selected_shared`,
//! `analyze_with_elimination`) remain as thin deprecated wrappers.
//!
//! Every reported run records a [`StageReport`] per stage — wall time,
//! iteration counts, the per-restart MDS thetas, and whether the stage was
//! served from cache — retrievable via [`CoplotEngine::reports`] and
//! printable with [`StageReportTable`].
//!
//! # Caching and exactness
//!
//! Z-scores are per-column, so a column subset of the cached normalized
//! matrix equals the normalization of the subset. All three [`Metric`]s are
//! Minkowski distances `(sum_v |dz_v|^p)^(1/p)`, so the engine caches the
//! per-variable contributions `|dz_v|^p` for every observation pair and
//! rebuilds the dissimilarities of any variable subset by summing the active
//! contributions in ascending variable order — the same floating-point
//! additions, in the same order, as a direct computation, hence
//! bit-identical results.

use std::fmt;
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::arrows::{try_fit_arrow, Arrow};
use crate::data::{DataMatrix, Imputation, NormalizedMatrix};
use crate::dissimilarity::{DissimilarityMatrix, Metric};
use crate::error::CoplotError;
use crate::mds::{nonmetric_mds, MdsConfig, MdsSolution};
use crate::pipeline::CoplotResult;
use wl_linalg::Matrix;

/// Stage 1: raw data to a complete z-score matrix.
///
/// Implementations must normalize column-locally (each output column a
/// function of that input column alone); the engine relies on this to reuse
/// one normalization across variable subsets.
pub trait Normalizer: fmt::Debug + Send + Sync {
    /// Normalize a data matrix.
    fn normalize(&self, data: &DataMatrix) -> Result<NormalizedMatrix, CoplotError>;
}

/// Stage 2: z-scores to pairwise dissimilarities.
pub trait DissimilarityStage: fmt::Debug + Send + Sync {
    /// Dissimilarities over all variables of `z`.
    fn compute(&self, z: &NormalizedMatrix) -> Result<DissimilarityMatrix, CoplotError>;

    /// Reusable per-variable pair contributions, if this stage's metric
    /// decomposes over variables. `None` (the default) disables the
    /// engine's dissimilarity cache; subsets are then recomputed directly.
    fn contributions(&self, _z: &NormalizedMatrix) -> Option<PairContributions> {
        None
    }
}

/// Stage 3: dissimilarities to a low-dimensional configuration.
pub trait Embedder: fmt::Debug + Send + Sync {
    /// Embed the dissimilarities.
    fn embed(&self, diss: &DissimilarityMatrix) -> Result<MdsSolution, CoplotError>;
}

/// Stage 4: one variable column to an arrow over the configuration.
pub trait ArrowFitter: fmt::Debug + Send + Sync {
    /// Fit the arrow for variable `name`.
    fn fit(&self, name: &str, coords: &Matrix, z: &[f64]) -> Result<Arrow, CoplotError>;
}

/// The paper's stage 1: z-score normalization (Eq. 1).
#[derive(Debug, Clone, Copy)]
pub struct ZScoreNormalizer {
    /// Missing-cell policy.
    pub imputation: Imputation,
}

impl Normalizer for ZScoreNormalizer {
    fn normalize(&self, data: &DataMatrix) -> Result<NormalizedMatrix, CoplotError> {
        data.normalize(self.imputation)
    }
}

/// The paper's stage 2: a Minkowski-family metric over z-score rows (Eq. 2
/// uses city-block).
#[derive(Debug, Clone, Copy)]
pub struct MetricDissimilarity {
    /// The row metric.
    pub metric: Metric,
}

impl DissimilarityStage for MetricDissimilarity {
    fn compute(&self, z: &NormalizedMatrix) -> Result<DissimilarityMatrix, CoplotError> {
        Ok(DissimilarityMatrix::compute(z, self.metric))
    }

    fn contributions(&self, z: &NormalizedMatrix) -> Option<PairContributions> {
        Some(PairContributions::compute(z, self.metric))
    }
}

/// The paper's stage 3: nonmetric MDS scored by Guttman's coefficient of
/// alienation.
#[derive(Debug, Clone, Copy)]
pub struct NonmetricMdsEmbedder {
    /// Optimizer knobs (restarts, seed, threads...).
    pub config: MdsConfig,
}

impl Embedder for NonmetricMdsEmbedder {
    fn embed(&self, diss: &DissimilarityMatrix) -> Result<MdsSolution, CoplotError> {
        nonmetric_mds(diss, &self.config)
    }
}

/// The paper's stage 4: closed-form OLS arrow fits.
#[derive(Debug, Clone, Copy)]
pub struct OlsArrowFitter;

impl ArrowFitter for OlsArrowFitter {
    fn fit(&self, name: &str, coords: &Matrix, z: &[f64]) -> Result<Arrow, CoplotError> {
        try_fit_arrow(name, coords, z)
    }
}

/// Per-variable dissimilarity contributions `|dz_v|^p` for every observation
/// pair, cached so any variable subset's dissimilarities can be rebuilt by
/// summation instead of a fresh pass over the data.
#[derive(Debug, Clone)]
pub struct PairContributions {
    n: usize,
    order: f64,
    /// `per_variable[v][pair]` in upper-triangle pair order.
    per_variable: Vec<Vec<f64>>,
}

impl PairContributions {
    /// Contributions of every variable of `z` under `metric`.
    pub fn compute(z: &NormalizedMatrix, metric: Metric) -> PairContributions {
        let n = z.n_observations();
        let p = z.n_variables();
        let order = metric.order();
        let n_pairs = n * (n - 1) / 2;
        // Flat preallocated rows (one per variable) with the metric match
        // hoisted out of the per-cell loop.
        let mut per_variable = vec![vec![0.0f64; n_pairs]; p];
        let mut pair = 0usize;
        for i in 0..n {
            for k in (i + 1)..n {
                let (a, b) = (z.row(i), z.row(k));
                // Match vecops' per-term expressions exactly so summing
                // contributions is bit-identical to a direct distance.
                match metric {
                    Metric::CityBlock => {
                        for (v, contribs) in per_variable.iter_mut().enumerate() {
                            contribs[pair] = (a[v] - b[v]).abs();
                        }
                    }
                    Metric::Euclidean => {
                        for (v, contribs) in per_variable.iter_mut().enumerate() {
                            let d = a[v] - b[v];
                            contribs[pair] = d * d;
                        }
                    }
                    Metric::Minkowski(p) => {
                        for (v, contribs) in per_variable.iter_mut().enumerate() {
                            contribs[pair] = (a[v] - b[v]).abs().powf(p);
                        }
                    }
                }
                pair += 1;
            }
        }
        PairContributions {
            n,
            order,
            per_variable,
        }
    }

    /// Number of variables with cached contributions.
    pub fn n_variables(&self) -> usize {
        self.per_variable.len()
    }

    /// Number of observation pairs per variable row.
    pub fn n_pairs(&self) -> usize {
        self.n * (self.n - 1) / 2
    }

    /// Dissimilarities over the variable subset `keep`.
    ///
    /// `keep` must be ascending for bit-identity with a direct computation
    /// (a direct pass sums variables in ascending order).
    ///
    /// # Panics
    /// Panics on an out-of-range variable index — a caller bug.
    pub fn combine(&self, keep: &[usize]) -> DissimilarityMatrix {
        let mut sums = vec![0.0; self.n_pairs()];
        for &v in keep {
            for (s, &c) in sums.iter_mut().zip(&self.per_variable[v]) {
                *s += c;
            }
        }
        self.apply_root(sums)
    }

    /// Apply the metric's outer root to summed contributions and wrap them
    /// as a matrix — the shared tail of [`combine`](Self::combine) and
    /// [`SubsetCombiner::combine`].
    fn apply_root(&self, mut sums: Vec<f64>) -> DissimilarityMatrix {
        if self.order == 2.0 {
            // `.sqrt()` rather than `.powf(0.5)`: same choice as vecops.
            for s in &mut sums {
                *s = s.sqrt();
            }
        } else if self.order != 1.0 {
            for s in &mut sums {
                *s = s.powf(1.0 / self.order);
            }
        }
        DissimilarityMatrix::from_pairs(self.n, sums)
    }
}

/// Incrementally recombines dissimilarities across a *sequence* of variable
/// subsets, reusing the partial sums of the longest shared ascending prefix
/// between consecutive subsets.
///
/// `prefix[j]` caches the element-wise contribution sum of `keep[..=j]`.
/// Because [`PairContributions::combine`] adds variables in ascending order
/// starting from zeros — and `0.0 + x == x` bitwise for the non-negative
/// contributions — extending a cached prefix performs the *same* additions
/// in the same order as a fresh combine, so every result is bit-identical
/// to `contribs.combine(keep)` regardless of what the combiner saw before.
/// Lexicographic subset enumeration and elimination rounds share long
/// prefixes, turning the O(k·n²) fresh combine into O(changed-levels·n²).
///
/// A combiner must only ever be fed one `PairContributions` value; the
/// engine's [`SharedSubsetSession`] and elimination loop each own one for
/// exactly that reason.
#[derive(Debug, Default)]
pub struct SubsetCombiner {
    keep: Vec<usize>,
    prefix: Vec<Vec<f64>>,
}

impl SubsetCombiner {
    /// An empty combiner (no cached levels).
    pub fn new() -> SubsetCombiner {
        SubsetCombiner::default()
    }

    /// Dissimilarities over `keep` (ascending), bit-identical to
    /// `contribs.combine(keep)`.
    ///
    /// # Panics
    /// Panics on an out-of-range variable index or an empty `keep` — caller
    /// bugs, like [`PairContributions::combine`].
    pub fn combine(&mut self, contribs: &PairContributions, keep: &[usize]) -> DissimilarityMatrix {
        assert!(!keep.is_empty(), "SubsetCombiner: empty variable subset");
        // Defensive: a contributions value of a different shape invalidates
        // every cached level (the documented contract is one combiner per
        // PairContributions; this catches the shape-changing misuse).
        if self
            .prefix
            .first()
            .is_some_and(|row| row.len() != contribs.n_pairs())
        {
            self.keep.clear();
            self.prefix.clear();
        }
        let shared = self
            .keep
            .iter()
            .zip(keep)
            .take_while(|(a, b)| a == b)
            .count();
        if shared > 0 {
            wl_obs::counter!("engine.subset.incremental.hits", 1u64);
            wl_obs::counter!("engine.subset.incremental.levels_reused", shared as u64);
        } else {
            wl_obs::counter!("engine.subset.incremental.misses", 1u64);
        }
        wl_obs::counter!(
            "engine.subset.incremental.levels_computed",
            (keep.len() - shared) as u64
        );
        self.keep.truncate(shared);
        self.prefix.truncate(shared);
        for &v in &keep[shared..] {
            let next = match self.prefix.last() {
                // Extending: prev already equals the fresh sum over
                // keep[..j], so prev + contribs[v] is the fresh combine's
                // next addition verbatim.
                Some(prev) => {
                    let mut sums = prev.clone();
                    for (s, &c) in sums.iter_mut().zip(&contribs.per_variable[v]) {
                        *s += c;
                    }
                    sums
                }
                // First level: 0.0 + c == c bitwise for the non-negative
                // contributions, so the plain copy matches a fresh combine.
                None => contribs.per_variable[v].clone(),
            };
            self.keep.push(v);
            self.prefix.push(next);
        }
        let sums = self.prefix.last().expect("non-empty keep").clone();
        contribs.apply_root(sums)
    }
}

/// Which analysis [`CoplotEngine::run`] performs over the data.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// All variables, recording stage reports.
    All,
    /// An ascending subset of variable indices, recording stage reports.
    Subset(Vec<usize>),
    /// Like [`Selection::Subset`] but served entirely from the
    /// already-populated cache and without recording reports, so many
    /// `SubsetShared` runs can proceed concurrently against one engine.
    /// Errors with [`CoplotError::InvalidConfig`] when the cache does not
    /// hold this data's intermediates (run [`Selection::All`] first).
    SubsetShared(Vec<usize>),
    /// The paper's variable-elimination workflow: analyze, drop the worst
    /// variable while any arrow correlation is below `min_correlation`,
    /// re-embed, repeat. The removal order lands in
    /// [`CoplotResult::removed`].
    Eliminate {
        /// Keep eliminating while any arrow correlation is below this.
        min_correlation: f64,
    },
}

/// Which pipeline stage a [`StageReport`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1: z-score normalization.
    Normalize,
    /// Stage 2: pairwise dissimilarities.
    Dissimilarity,
    /// Stage 3: MDS embedding.
    Embedding,
    /// Stage 4: variable arrows.
    Arrows,
}

impl Stage {
    /// Lower-case stage name as printed in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Normalize => "normalize",
            Stage::Dissimilarity => "dissimilarity",
            Stage::Embedding => "embedding",
            Stage::Arrows => "arrows",
        }
    }

    /// Parse a stage from its [`Stage::name`] label.
    pub fn from_name(name: &str) -> Option<Stage> {
        match name {
            "normalize" => Some(Stage::Normalize),
            "dissimilarity" => Some(Stage::Dissimilarity),
            "embedding" => Some(Stage::Embedding),
            "arrows" => Some(Stage::Arrows),
            _ => None,
        }
    }
}

/// One stage's instrumentation record for one pipeline pass.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// The stage this record describes.
    pub stage: Stage,
    /// Wall-clock time the stage spent.
    pub wall_time: Duration,
    /// Iterations consumed (MDS majorization iterations across all starts;
    /// 0 for non-iterative stages).
    pub iterations: usize,
    /// Per-start coefficients of alienation (embedding stage only).
    pub theta_per_restart: Vec<f64>,
    /// Wall time inside the MDS majorization descent (embedding stage only;
    /// zero elsewhere).
    pub majorization_time: Duration,
    /// Wall time scoring configurations with the Θ kernel — map distances
    /// plus coefficient of alienation (embedding stage only; zero
    /// elsewhere).
    pub theta_time: Duration,
    /// Whether the stage reused a cached intermediate instead of computing
    /// from the raw input.
    pub cache_hit: bool,
}

/// Renders a slice of [`StageReport`]s as an aligned text table (what the
/// CLI's `--timings` flag prints).
pub struct StageReportTable<'a>(pub &'a [StageReport]);

impl fmt::Display for StageReportTable<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>12} {:>6} {:>6} {:>12} {:>12}  theta per start",
            "stage", "wall", "iters", "cache", "major", "theta"
        )?;
        for r in self.0 {
            let micros = r.wall_time.as_secs_f64() * 1e6;
            let thetas = if r.theta_per_restart.is_empty() {
                "-".to_string()
            } else {
                r.theta_per_restart
                    .iter()
                    .map(|t| {
                        if t.is_finite() {
                            format!("{t:.4}")
                        } else {
                            "collapsed".to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            // The majorization / theta-evaluation split only exists for the
            // embedding stage; other rows print "-".
            let split = |d: Duration| {
                if r.stage == Stage::Embedding {
                    format!("{:.1} us", d.as_secs_f64() * 1e6)
                } else {
                    "-".to_string()
                }
            };
            writeln!(
                f,
                "{:<14} {:>9.1} us {:>6} {:>6} {:>12} {:>12}  {}",
                r.stage.name(),
                micros,
                r.iterations,
                if r.cache_hit { "hit" } else { "miss" },
                split(r.majorization_time),
                split(r.theta_time),
                thetas
            )?;
        }
        Ok(())
    }
}

/// Cached intermediates of the engine's last input.
#[derive(Debug, Clone)]
struct EngineCache {
    fingerprint: u64,
    z: NormalizedMatrix,
    contributions: Option<PairContributions>,
}

/// How much prepare-time work the current pass inherited (threaded into the
/// stage reports of the first selection it serves).
#[derive(Clone, Copy)]
struct PrepareInfo {
    cache_hit: bool,
    normalize_time: Duration,
    contrib_time: Duration,
}

impl PrepareInfo {
    fn cached() -> PrepareInfo {
        PrepareInfo {
            cache_hit: true,
            normalize_time: Duration::ZERO,
            contrib_time: Duration::ZERO,
        }
    }
}

/// FNV-1a over the data matrix's names and cells; a content fingerprint for
/// the cache (collisions are astronomically unlikely at the scale of tens of
/// workloads, and a false hit only ever reuses a *valid* normalization of
/// the colliding data).
fn fingerprint(data: &DataMatrix) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for name in data.observations() {
        eat(name.as_bytes());
        eat(&[0xff]);
    }
    eat(&[0xfe]);
    for name in data.variables() {
        eat(name.as_bytes());
        eat(&[0xff]);
    }
    for i in 0..data.n_observations() {
        for v in 0..data.n_variables() {
            match data.get(i, v) {
                Some(x) => {
                    eat(&[1]);
                    eat(&x.to_bits().to_le_bytes());
                }
                None => eat(&[0]),
            }
        }
    }
    h
}

/// The staged, caching, instrumented Co-plot pipeline.
///
/// Build one with [`CoplotEngine::builder`]; run analyses with
/// [`run`](CoplotEngine::run) and a [`Selection`]; inspect the last
/// reported run's per-stage instrumentation with
/// [`reports`](CoplotEngine::reports).
#[derive(Debug)]
pub struct CoplotEngine {
    normalizer: Box<dyn Normalizer>,
    dissimilarity: Box<dyn DissimilarityStage>,
    embedder: Box<dyn Embedder>,
    arrow_fitter: Box<dyn ArrowFitter>,
    cache: RwLock<Option<EngineCache>>,
    reports: Mutex<Vec<StageReport>>,
}

impl Default for CoplotEngine {
    fn default() -> Self {
        CoplotEngine::builder().build()
    }
}

impl CoplotEngine {
    /// A builder preloaded with the paper's defaults.
    pub fn builder() -> CoplotEngineBuilder {
        CoplotEngineBuilder::default()
    }

    /// Run the pipeline for one [`Selection`].
    ///
    /// `All`, `Subset` and `Eliminate` populate the cache for `data` when it
    /// is cold and record per-stage [`StageReport`]s (replacing the previous
    /// run's reports); re-running on the same data reuses the cached
    /// normalization and dissimilarity contributions, visible as
    /// `cache_hit` in the reports. `SubsetShared` is served entirely from
    /// the already-populated cache without touching the reports, so any
    /// number of `SubsetShared` runs can proceed concurrently against one
    /// shared engine; results are bit-identical to `Subset` (both run the
    /// same selection core).
    ///
    /// # Errors
    /// Any stage's [`CoplotError`]; additionally
    /// [`CoplotError::EmptyInput`] / [`CoplotError::DimensionMismatch`] for
    /// invalid subsets and [`CoplotError::InvalidConfig`] for a
    /// `SubsetShared` against a cold or mismatched cache.
    pub fn run(&self, data: &DataMatrix, selection: &Selection) -> Result<CoplotResult, CoplotError> {
        let fp = fingerprint(data);
        match selection {
            Selection::All => self.with_cache(data, fp, |this, cache, info| {
                let keep: Vec<usize> = (0..cache.z.n_variables()).collect();
                this.run_reported(cache, &keep, info)
            }),
            Selection::Subset(keep) => self.with_cache(data, fp, |this, cache, info| {
                validate_keep(cache.z.n_variables(), keep, "Selection::Subset")?;
                this.run_reported(cache, keep, info)
            }),
            Selection::SubsetShared(keep) => {
                let guard = self.cache.read().expect("engine cache lock");
                let cache = guard
                    .as_ref()
                    .filter(|c| c.fingerprint == fp)
                    .ok_or_else(|| {
                        CoplotError::InvalidConfig(
                            "Selection::SubsetShared: engine cache does not hold this \
                             data's intermediates; run Selection::All on it first"
                                .into(),
                        )
                    })?;
                validate_keep(cache.z.n_variables(), keep, "Selection::SubsetShared")?;
                wl_obs::counter!("engine.shared_selections", 1u64);
                self.compute_selection(cache, keep, None).map(|(r, _)| r)
            }
            Selection::Eliminate { min_correlation } => {
                self.with_cache(data, fp, |this, cache, info| {
                    this.run_elimination(cache, info, *min_correlation)
                })
            }
        }
    }

    /// Run all four stages on a data matrix.
    #[deprecated(note = "use CoplotEngine::run(data, &Selection::All)")]
    pub fn analyze(&mut self, data: &DataMatrix) -> Result<CoplotResult, CoplotError> {
        self.run(data, &Selection::All)
    }

    /// Run the stages on a subset of variables, given by ascending indices
    /// into the normalized matrix's variables.
    #[deprecated(note = "use CoplotEngine::run(data, &Selection::Subset(keep))")]
    pub fn analyze_selected(
        &mut self,
        data: &DataMatrix,
        keep: &[usize],
    ) -> Result<CoplotResult, CoplotError> {
        self.run(data, &Selection::Subset(keep.to_vec()))
    }

    /// Cache-only immutable selection (see [`Selection::SubsetShared`]).
    #[deprecated(note = "use CoplotEngine::run(data, &Selection::SubsetShared(keep))")]
    pub fn analyze_selected_shared(
        &self,
        data: &DataMatrix,
        keep: &[usize],
    ) -> Result<CoplotResult, CoplotError> {
        self.run(data, &Selection::SubsetShared(keep.to_vec()))
    }

    /// The paper's variable-elimination workflow; returns the final result
    /// plus the names of removed variables, in removal order.
    #[deprecated(note = "use CoplotEngine::run(data, &Selection::Eliminate { .. }); \
                         removal order is in CoplotResult::removed")]
    pub fn analyze_with_elimination(
        &mut self,
        data: &DataMatrix,
        min_correlation: f64,
    ) -> Result<(CoplotResult, Vec<String>), CoplotError> {
        let result = self.run(data, &Selection::Eliminate { min_correlation })?;
        let removed = result.removed.clone();
        Ok((result, removed))
    }

    /// Per-stage instrumentation of the last reported `run` (selections
    /// `All`, `Subset`, `Eliminate`), in execution order. Elimination runs
    /// append one group of four reports per round. `SubsetShared` runs
    /// leave the reports untouched.
    pub fn reports(&self) -> Vec<StageReport> {
        self.reports.lock().expect("engine reports lock").clone()
    }

    /// Drop the cached intermediates (the next run recomputes everything).
    pub fn clear_cache(&self) {
        *self.cache.write().expect("engine cache lock") = None;
    }

    /// Open a batch of cache-only subset analyses against this engine.
    ///
    /// Each [`SharedSubsetSession::run_subset`] call is bit-identical to
    /// `run(data, &Selection::SubsetShared(keep))`, but the session holds
    /// the cache read-lock once for its whole lifetime and threads a
    /// [`SubsetCombiner`] through the calls, so consecutive subsets that
    /// share an ascending keep-prefix (lexicographic subset enumeration,
    /// elimination-style nested subsets) only recombine the changed
    /// levels. Reports are never touched, so any number of sessions can
    /// proceed concurrently against one engine.
    ///
    /// Note the session keeps the engine's cache read-locked: reported runs
    /// on *new* data (which must write the cache) block until every open
    /// session drops.
    ///
    /// # Errors
    /// [`CoplotError::InvalidConfig`] when the cache does not hold this
    /// data's intermediates (run [`Selection::All`] first).
    pub fn shared_session(&self, data: &DataMatrix) -> Result<SharedSubsetSession<'_>, CoplotError> {
        let fp = fingerprint(data);
        let guard = self.cache.read().expect("engine cache lock");
        if guard.as_ref().filter(|c| c.fingerprint == fp).is_none() {
            return Err(CoplotError::InvalidConfig(
                "shared_session: engine cache does not hold this data's \
                 intermediates; run Selection::All on it first"
                    .into(),
            ));
        }
        Ok(SharedSubsetSession {
            engine: self,
            guard,
            combiner: SubsetCombiner::new(),
        })
    }

    /// Run `f` against a cache guaranteed to hold `data`'s intermediates.
    ///
    /// `prepare` populates the cache, but another thread may replace it
    /// between preparing and re-acquiring the read lock (the engine is
    /// `&self`-shared); the loop re-prepares until the fingerprint under
    /// the read lock is ours, so concurrent runs on different data are
    /// slow (they evict each other) but never wrong.
    fn with_cache<T>(
        &self,
        data: &DataMatrix,
        fp: u64,
        f: impl FnOnce(&CoplotEngine, &EngineCache, PrepareInfo) -> Result<T, CoplotError>,
    ) -> Result<T, CoplotError> {
        let mut f = Some(f);
        loop {
            let info = self.prepare(data, fp)?;
            let guard = self.cache.read().expect("engine cache lock");
            if let Some(cache) = guard.as_ref().filter(|c| c.fingerprint == fp) {
                let f = f.take().expect("closure consumed once");
                return f(self, cache, info);
            }
        }
    }

    /// Make sure the cache holds this data's normalization and
    /// contributions, computing them if the fingerprint changed.
    fn prepare(&self, data: &DataMatrix, fp: u64) -> Result<PrepareInfo, CoplotError> {
        let _span = wl_obs::span!("engine.prepare");
        {
            let guard = self.cache.read().expect("engine cache lock");
            if let Some(c) = guard.as_ref().filter(|c| c.fingerprint == fp) {
                wl_obs::counter!("engine.cache.normalized.hit", 1u64);
                if c.contributions.is_some() {
                    wl_obs::counter!("engine.cache.contributions.hit", 1u64);
                }
                return Ok(PrepareInfo::cached());
            }
        }
        wl_obs::counter!("engine.cache.normalized.miss", 1u64);
        let t = Instant::now();
        let z = {
            let _span = wl_obs::span!("engine.normalize");
            self.normalizer.normalize(data)?
        };
        let normalize_time = t.elapsed();
        let t = Instant::now();
        let contributions = {
            let _span = wl_obs::span!("engine.contributions");
            self.dissimilarity.contributions(&z)
        };
        let contrib_time = t.elapsed();
        if contributions.is_some() {
            wl_obs::counter!("engine.cache.contributions.miss", 1u64);
        }
        *self.cache.write().expect("engine cache lock") = Some(EngineCache {
            fingerprint: fp,
            z,
            contributions,
        });
        Ok(PrepareInfo {
            cache_hit: false,
            normalize_time,
            contrib_time,
        })
    }

    /// One reported selection pass: clear the previous run's reports, run
    /// the selection core, record the four stage reports.
    fn run_reported(
        &self,
        cache: &EngineCache,
        keep: &[usize],
        info: PrepareInfo,
    ) -> Result<CoplotResult, CoplotError> {
        self.reports.lock().expect("engine reports lock").clear();
        self.run_selection(cache, keep, info, None)
    }

    /// Run stages 1'–4 for one variable selection against the cache, timing
    /// each stage and appending its report. `pre` optionally supplies an
    /// already-combined dissimilarity matrix (the elimination loop's
    /// incremental combiner); it must be bit-identical to what the cache
    /// would produce for `keep`.
    fn run_selection(
        &self,
        cache: &EngineCache,
        keep: &[usize],
        info: PrepareInfo,
        pre: Option<PreDiss>,
    ) -> Result<CoplotResult, CoplotError> {
        let (result, t) = self.compute_selection(cache, keep, pre)?;
        let mut reports = self.reports.lock().expect("engine reports lock");
        reports.push(StageReport {
            stage: Stage::Normalize,
            wall_time: info.normalize_time + t.select,
            iterations: 0,
            theta_per_restart: Vec::new(),
            majorization_time: Duration::ZERO,
            theta_time: Duration::ZERO,
            cache_hit: info.cache_hit,
        });
        reports.push(StageReport {
            stage: Stage::Dissimilarity,
            wall_time: info.contrib_time + t.diss,
            iterations: 0,
            theta_per_restart: Vec::new(),
            majorization_time: Duration::ZERO,
            theta_time: Duration::ZERO,
            cache_hit: t.diss_cacheable && info.cache_hit,
        });
        reports.push(StageReport {
            stage: Stage::Embedding,
            wall_time: t.embed,
            iterations: t.iterations,
            theta_per_restart: t.theta_per_restart,
            majorization_time: t.majorization_time,
            theta_time: t.theta_time,
            cache_hit: false,
        });
        reports.push(StageReport {
            stage: Stage::Arrows,
            wall_time: t.arrows,
            iterations: 0,
            theta_per_restart: Vec::new(),
            majorization_time: Duration::ZERO,
            theta_time: Duration::ZERO,
            cache_hit: false,
        });
        Ok(result)
    }

    /// The elimination loop: analyze, drop the worst variable while any
    /// arrow correlation is below `min_correlation`, re-run, repeat.
    ///
    /// At least two variables are always kept; if even those fall below the
    /// threshold the last result is returned anyway (matching how the paper
    /// reports maps with a few weaker variables noted). Normalization and
    /// dissimilarity contributions are computed once; each round only
    /// re-embeds and re-fits arrows.
    fn run_elimination(
        &self,
        cache: &EngineCache,
        info: PrepareInfo,
        min_correlation: f64,
    ) -> Result<CoplotResult, CoplotError> {
        self.reports.lock().expect("engine reports lock").clear();
        let mut info = info;
        let mut keep: Vec<usize> = (0..cache.z.n_variables()).collect();
        let mut removed = Vec::new();
        // Successive rounds differ by one removed variable, so an
        // incremental combiner reuses every contribution level below the
        // removal point instead of re-summing the whole keep set.
        let mut combiner = SubsetCombiner::new();
        loop {
            let pre = cache.contributions.as_ref().map(|c| {
                let t = Instant::now();
                let diss = combiner.combine(c, &keep);
                PreDiss {
                    diss,
                    combine_time: t.elapsed(),
                }
            });
            let mut result = self.run_selection(cache, &keep, info, pre)?;
            info = PrepareInfo::cached();
            if keep.len() <= 2 {
                result.removed = removed;
                return Ok(result);
            }
            // Find the worst-fitting variable. The comparison is total:
            // arrow correlations are finite by construction (a NaN fit is a
            // DegenerateVariable error upstream).
            let worst = result
                .arrows
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.correlation
                        .abs()
                        .partial_cmp(&b.correlation.abs())
                        .expect("finite correlations")
                })
                .map(|(i, a)| (i, a.correlation.abs(), a.name.clone()))
                .expect("at least one arrow");
            if worst.1 >= min_correlation {
                result.removed = removed;
                return Ok(result);
            }
            keep.remove(worst.0);
            removed.push(worst.2);
        }
    }

    /// The shared selection core: stages 1'–4 against a populated cache,
    /// with per-stage timings returned rather than recorded. Both the
    /// report-recording path and the immutable shared path run exactly this
    /// code, so their results are bit-identical by construction.
    fn compute_selection(
        &self,
        cache: &EngineCache,
        keep: &[usize],
        pre: Option<PreDiss>,
    ) -> Result<(CoplotResult, SelectionTimings), CoplotError> {
        let _span = wl_obs::span!("engine.selection");
        wl_obs::counter!("engine.selections", 1u64);
        let full = keep.len() == cache.z.n_variables()
            && keep.iter().enumerate().all(|(i, &v)| i == v);

        let t = Instant::now();
        let z = if full {
            cache.z.clone()
        } else {
            cache.z.select_variables(keep)
        };
        let select = t.elapsed();

        let t = Instant::now();
        let (diss, diss_cacheable, pre_time) = {
            let _span = wl_obs::span!("engine.dissimilarity");
            match pre {
                // An incremental combiner already produced this subset's
                // matrix (bit-identical to the cache path by the combiner's
                // contract); only fold its measured time in.
                Some(p) => {
                    wl_obs::counter!("engine.selection.diss.cached", 1u64);
                    (p.diss, true, p.combine_time)
                }
                None => match &cache.contributions {
                    Some(c) => {
                        wl_obs::counter!("engine.selection.diss.cached", 1u64);
                        (c.combine(keep), true, Duration::ZERO)
                    }
                    None => {
                        wl_obs::counter!("engine.selection.diss.direct", 1u64);
                        (self.dissimilarity.compute(&z)?, false, Duration::ZERO)
                    }
                },
            }
        };
        let diss_time = t.elapsed() + pre_time;

        let t = Instant::now();
        let sol = {
            let _span = wl_obs::span!("engine.embed");
            self.embedder.embed(&diss)?
        };
        let embed = t.elapsed();

        let t = Instant::now();
        let mut arrows = Vec::with_capacity(z.n_variables());
        {
            let _span = wl_obs::span!("engine.arrows");
            for v in 0..z.n_variables() {
                let col = z.column(v);
                arrows.push(self.arrow_fitter.fit(&z.variables()[v], &sol.coords, &col)?);
            }
        }
        let arrows_time = t.elapsed();

        let timings = SelectionTimings {
            select,
            diss: diss_time,
            diss_cacheable,
            embed,
            arrows: arrows_time,
            iterations: sol.iterations,
            theta_per_restart: sol.theta_per_restart,
            majorization_time: sol.majorization_time,
            theta_time: sol.theta_time,
        };
        Ok((
            CoplotResult {
                observations: z.observations().to_vec(),
                coords: sol.coords,
                arrows,
                alienation: sol.alienation,
                stress: sol.stress,
                dissimilarities: diss,
                removed: Vec::new(),
            },
            timings,
        ))
    }
}

/// Reject empty or out-of-range variable selections.
fn validate_keep(p: usize, keep: &[usize], context: &str) -> Result<(), CoplotError> {
    if keep.is_empty() {
        return Err(CoplotError::EmptyInput {
            what: "selected variables",
        });
    }
    if let Some(&bad) = keep.iter().find(|&&v| v >= p) {
        return Err(CoplotError::DimensionMismatch {
            context: format!("{context}: variable index"),
            expected: p,
            got: bad,
        });
    }
    Ok(())
}

/// Per-stage wall times (and embedding diagnostics) of one selection pass,
/// handed back by the selection core for the caller to fold into reports.
struct SelectionTimings {
    select: Duration,
    diss: Duration,
    diss_cacheable: bool,
    embed: Duration,
    arrows: Duration,
    iterations: usize,
    theta_per_restart: Vec<f64>,
    majorization_time: Duration,
    theta_time: Duration,
}

/// A dissimilarity matrix combined ahead of the selection core (by an
/// incremental [`SubsetCombiner`]), plus the wall time the combine took so
/// the dissimilarity stage report stays honest.
struct PreDiss {
    diss: DissimilarityMatrix,
    combine_time: Duration,
}

/// A batch of cache-only subset analyses against one engine (see
/// [`CoplotEngine::shared_session`]). Holds the engine's cache read-lock
/// for its lifetime and an incremental [`SubsetCombiner`] keyed to the
/// cached contributions.
pub struct SharedSubsetSession<'e> {
    engine: &'e CoplotEngine,
    guard: std::sync::RwLockReadGuard<'e, Option<EngineCache>>,
    combiner: SubsetCombiner,
}

impl SharedSubsetSession<'_> {
    /// Analyze one ascending variable subset from the session's cache.
    ///
    /// Bit-identical to `Selection::SubsetShared(keep)` — the dissimilarity
    /// matrix comes from the incremental combiner, whose output matches
    /// `PairContributions::combine` exactly, and everything downstream is
    /// the same selection core.
    ///
    /// # Errors
    /// Any stage's [`CoplotError`], plus the usual invalid-subset errors.
    pub fn run_subset(&mut self, keep: &[usize]) -> Result<CoplotResult, CoplotError> {
        let cache = self
            .guard
            .as_ref()
            .expect("session cache validated at construction");
        validate_keep(cache.z.n_variables(), keep, "SharedSubsetSession")?;
        wl_obs::counter!("engine.shared_selections", 1u64);
        let pre = cache.contributions.as_ref().map(|c| {
            let t = Instant::now();
            let diss = self.combiner.combine(c, keep);
            PreDiss {
                diss,
                combine_time: t.elapsed(),
            }
        });
        self.engine
            .compute_selection(cache, keep, pre)
            .map(|(r, _)| r)
    }
}

/// Builder for [`CoplotEngine`]; defaults match the paper (city-block
/// metric, column-mean imputation, classical init + 8 seeded restarts).
#[derive(Debug)]
pub struct CoplotEngineBuilder {
    metric: Metric,
    imputation: Imputation,
    mds: MdsConfig,
    normalizer: Option<Box<dyn Normalizer>>,
    dissimilarity: Option<Box<dyn DissimilarityStage>>,
    embedder: Option<Box<dyn Embedder>>,
    arrow_fitter: Option<Box<dyn ArrowFitter>>,
}

impl Default for CoplotEngineBuilder {
    fn default() -> Self {
        CoplotEngineBuilder {
            metric: Metric::CityBlock,
            imputation: Imputation::ColumnMean,
            mds: MdsConfig::default(),
            normalizer: None,
            dissimilarity: None,
            embedder: None,
            arrow_fitter: None,
        }
    }
}

impl CoplotEngineBuilder {
    /// Choose the stage-2 metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Choose the missing-cell policy.
    pub fn imputation(mut self, imputation: Imputation) -> Self {
        self.imputation = imputation;
        self
    }

    /// Replace the whole MDS configuration.
    pub fn mds(mut self, config: MdsConfig) -> Self {
        self.mds = config;
        self
    }

    /// Seed the MDS restarts.
    pub fn seed(mut self, seed: u64) -> Self {
        self.mds.seed = seed;
        self
    }

    /// Number of random restarts (beyond the classical-scaling start).
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.mds.restarts = restarts;
        self
    }

    /// Worker threads for the MDS restarts (results are bit-identical for
    /// any thread count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.mds.threads = threads;
        self
    }

    /// Majorization iteration cap per start.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.mds.max_iterations = iters;
        self
    }

    /// Install a custom stage-1 normalizer (must be column-local; see
    /// [`Normalizer`]).
    pub fn normalizer(mut self, stage: Box<dyn Normalizer>) -> Self {
        self.normalizer = Some(stage);
        self
    }

    /// Install a custom stage-2 dissimilarity.
    pub fn dissimilarity(mut self, stage: Box<dyn DissimilarityStage>) -> Self {
        self.dissimilarity = Some(stage);
        self
    }

    /// Install a custom stage-3 embedder.
    pub fn embedder(mut self, stage: Box<dyn Embedder>) -> Self {
        self.embedder = Some(stage);
        self
    }

    /// Install a custom stage-4 arrow fitter.
    pub fn arrow_fitter(mut self, stage: Box<dyn ArrowFitter>) -> Self {
        self.arrow_fitter = Some(stage);
        self
    }

    /// Build the engine.
    pub fn build(self) -> CoplotEngine {
        CoplotEngine {
            normalizer: self.normalizer.unwrap_or_else(|| {
                Box::new(ZScoreNormalizer {
                    imputation: self.imputation,
                })
            }),
            dissimilarity: self
                .dissimilarity
                .unwrap_or_else(|| Box::new(MetricDissimilarity { metric: self.metric })),
            embedder: self
                .embedder
                .unwrap_or_else(|| Box::new(NonmetricMdsEmbedder { config: self.mds })),
            arrow_fitter: self.arrow_fitter.unwrap_or(Box::new(OlsArrowFitter)),
            cache: RwLock::new(None),
            reports: Mutex::new(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Coplot;

    fn structured_data() -> DataMatrix {
        DataMatrix::from_rows(
            vec![
                "lo1".into(),
                "lo2".into(),
                "lo3".into(),
                "hi1".into(),
                "hi2".into(),
                "hi3".into(),
            ],
            vec!["a".into(), "a2".into(), "anti".into(), "b".into()],
            &[
                &[1.0, 1.1, 9.0, 5.0],
                &[1.2, 1.0, 8.8, 3.0],
                &[0.9, 1.2, 9.1, 4.0],
                &[5.0, 5.2, 1.0, 4.2],
                &[5.3, 4.9, 1.2, 2.8],
                &[4.8, 5.1, 0.8, 5.1],
            ],
        )
    }

    #[test]
    fn engine_matches_pipeline_facade() {
        let data = structured_data();
        let facade = Coplot::new().seed(11).analyze(&data).unwrap();
        let engine = CoplotEngine::builder().seed(11).build();
        let direct = engine.run(&data, &Selection::All).unwrap();
        assert_eq!(facade.coords.as_slice(), direct.coords.as_slice());
        assert_eq!(facade.alienation.to_bits(), direct.alienation.to_bits());
        assert_eq!(facade.arrows, direct.arrows);
    }

    #[test]
    fn deprecated_wrappers_match_run() {
        let data = structured_data();
        let engine = CoplotEngine::builder().seed(11).build();
        let via_run = engine.run(&data, &Selection::All).unwrap();
        let mut engine = CoplotEngine::builder().seed(11).build();
        #[allow(deprecated)]
        let via_wrapper = engine.analyze(&data).unwrap();
        assert_eq!(via_run.coords.as_slice(), via_wrapper.coords.as_slice());
        #[allow(deprecated)]
        let (elim, removed) = engine.analyze_with_elimination(&data, 0.0).unwrap();
        assert_eq!(elim.removed, removed);
    }

    #[test]
    fn second_run_hits_the_cache_with_identical_results() {
        let data = structured_data();
        let engine = CoplotEngine::builder().seed(12).build();
        let first = engine.run(&data, &Selection::All).unwrap();
        assert!(engine.reports().iter().all(|r| !r.cache_hit));
        let second = engine.run(&data, &Selection::All).unwrap();
        let hits: Vec<bool> = engine.reports().iter().map(|r| r.cache_hit).collect();
        assert_eq!(hits, [true, true, false, false]);
        assert_eq!(first.coords.as_slice(), second.coords.as_slice());
        assert_eq!(first.alienation.to_bits(), second.alienation.to_bits());
    }

    #[test]
    fn cache_invalidates_on_new_data() {
        let engine = CoplotEngine::builder().seed(13).build();
        engine.run(&structured_data(), &Selection::All).unwrap();
        let mut other = structured_data();
        other = other.select_observations(&[0, 1, 2, 3, 4]);
        engine.run(&other, &Selection::All).unwrap();
        assert!(engine.reports().iter().all(|r| !r.cache_hit));
    }

    #[test]
    fn contributions_combine_is_bit_identical_to_direct_compute() {
        let data = structured_data();
        let z = data.normalize(Imputation::ColumnMean).unwrap();
        for metric in [Metric::CityBlock, Metric::Euclidean, Metric::Minkowski(3.0)] {
            let direct_full = DissimilarityMatrix::compute(&z, metric);
            let contribs = PairContributions::compute(&z, metric);
            let combined_full = contribs.combine(&[0, 1, 2, 3]);
            assert_eq!(direct_full, combined_full, "{metric:?}");

            let keep = [0usize, 2];
            let direct_sub = DissimilarityMatrix::compute(&z.select_variables(&keep), metric);
            let combined_sub = contribs.combine(&keep);
            assert_eq!(direct_sub, combined_sub, "{metric:?} subset");
        }
    }

    #[test]
    fn subset_combiner_is_bit_identical_to_fresh_combine() {
        let data = structured_data();
        let z = data.normalize(Imputation::ColumnMean).unwrap();
        for metric in [Metric::CityBlock, Metric::Euclidean, Metric::Minkowski(3.0)] {
            let contribs = PairContributions::compute(&z, metric);
            let mut combiner = SubsetCombiner::new();
            // A history of overlapping, shrinking, and disjoint ascending
            // subsets: every result must equal the fresh combine bitwise,
            // no matter what the combiner cached before.
            let history: [&[usize]; 8] = [
                &[0, 1, 2, 3],
                &[0, 1, 2],
                &[0, 1, 3],
                &[0, 1, 3], // identical to previous: full prefix reuse
                &[2, 3],
                &[0],
                &[1, 2, 3],
                &[0, 1, 2, 3],
            ];
            for keep in history {
                let incremental = combiner.combine(&contribs, keep);
                let fresh = contribs.combine(keep);
                assert_eq!(incremental, fresh, "{metric:?} keep={keep:?}");
            }
        }
    }

    #[test]
    fn shared_session_matches_subset_shared_runs() {
        let data = structured_data();
        let engine = CoplotEngine::builder().seed(14).build();
        engine.run(&data, &Selection::All).unwrap();
        let subsets: [&[usize]; 4] = [&[0, 1, 2], &[0, 1, 3], &[0, 2, 3], &[1, 3]];
        let mut via_session = Vec::new();
        {
            let mut session = engine.shared_session(&data).unwrap();
            for keep in subsets {
                via_session.push(session.run_subset(keep).unwrap());
            }
        }
        for (keep, from_session) in subsets.iter().zip(&via_session) {
            let direct = engine
                .run(&data, &Selection::SubsetShared(keep.to_vec()))
                .unwrap();
            assert_eq!(
                from_session.coords.as_slice(),
                direct.coords.as_slice(),
                "keep={keep:?}"
            );
            assert_eq!(
                from_session.alienation.to_bits(),
                direct.alienation.to_bits()
            );
            assert_eq!(from_session.arrows, direct.arrows);
        }
    }

    #[test]
    fn shared_session_requires_populated_cache() {
        let engine = CoplotEngine::builder().seed(14).build();
        match engine.shared_session(&structured_data()) {
            Err(CoplotError::InvalidConfig(msg)) => {
                assert!(msg.contains("Selection::All"), "{msg}")
            }
            Err(other) => panic!("unexpected error: {other}"),
            Ok(_) => panic!("session opened without a populated cache"),
        };
    }

    #[test]
    fn incremental_counters_record_prefix_reuse() {
        wl_obs::set_enabled(true);
        let before = wl_obs::registry().snapshot();
        let data = structured_data();
        let engine = CoplotEngine::builder().seed(33).build();
        engine.run(&data, &Selection::All).unwrap();
        let mut session = engine.shared_session(&data).unwrap();
        session.run_subset(&[0, 1, 2]).unwrap();
        session.run_subset(&[0, 1, 3]).unwrap(); // shares the [0, 1] prefix
        drop(session);
        let after = wl_obs::registry().snapshot();
        let delta = |name: &str| after.counter(name) - before.counter(name);
        assert!(delta("engine.subset.incremental.hits") >= 1);
        assert!(delta("engine.subset.incremental.levels_reused") >= 2);
        assert!(delta("engine.subset.incremental.levels_computed") >= 4);
    }

    #[test]
    fn subset_selection_matches_fresh_analysis_of_the_subset() {
        let data = structured_data();
        let engine = CoplotEngine::builder().seed(14).build();
        engine.run(&data, &Selection::All).unwrap();
        let sub = engine.run(&data, &Selection::Subset(vec![0, 1, 3])).unwrap();
        // The dissimilarity stage must have come from the cache.
        assert!(engine.reports()[1].cache_hit);

        let fresh_data = data.select_variables(&[0, 1, 3]);
        let fresh = CoplotEngine::builder()
            .seed(14)
            .build()
            .run(&fresh_data, &Selection::All)
            .unwrap();
        assert_eq!(sub.coords.as_slice(), fresh.coords.as_slice());
        assert_eq!(sub.alienation.to_bits(), fresh.alienation.to_bits());
        assert_eq!(sub.arrows, fresh.arrows);
    }

    #[test]
    fn shared_selection_matches_reported_selection() {
        let data = structured_data();
        let engine = CoplotEngine::builder().seed(14).build();
        engine.run(&data, &Selection::All).unwrap();
        let reported = engine.run(&data, &Selection::Subset(vec![0, 1, 3])).unwrap();
        let shared = engine
            .run(&data, &Selection::SubsetShared(vec![0, 1, 3]))
            .unwrap();
        assert_eq!(reported.coords.as_slice(), shared.coords.as_slice());
        assert_eq!(reported.alienation.to_bits(), shared.alienation.to_bits());
        assert_eq!(reported.arrows, shared.arrows);
    }

    #[test]
    fn shared_selection_requires_populated_cache() {
        let engine = CoplotEngine::builder().seed(14).build();
        let err = engine
            .run(&structured_data(), &Selection::SubsetShared(vec![0, 1]))
            .unwrap_err();
        assert!(matches!(err, CoplotError::InvalidConfig(_)), "{err}");

        // A cache of *different* data is also rejected.
        let engine = CoplotEngine::builder().seed(14).build();
        engine
            .run(
                &structured_data().select_observations(&[0, 1, 2, 3, 4]),
                &Selection::All,
            )
            .unwrap();
        let err = engine
            .run(&structured_data(), &Selection::SubsetShared(vec![0, 1]))
            .unwrap_err();
        assert!(matches!(err, CoplotError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn subset_selection_rejects_bad_selections() {
        let data = structured_data();
        let engine = CoplotEngine::default();
        assert!(matches!(
            engine.run(&data, &Selection::Subset(vec![])).unwrap_err(),
            CoplotError::EmptyInput { .. }
        ));
        assert!(matches!(
            engine.run(&data, &Selection::Subset(vec![0, 9])).unwrap_err(),
            CoplotError::DimensionMismatch { got: 9, .. }
        ));
    }

    #[test]
    fn elimination_reuses_the_cache_across_rounds() {
        // Strong 2-D structure plus a noise variable: elimination runs at
        // least two rounds, and only the first computes stages 1-2.
        let d = DataMatrix::from_rows(
            (1..=8).map(|i| format!("o{i}")).collect(),
            vec![
                "x".into(),
                "x2".into(),
                "y".into(),
                "y2".into(),
                "noise".into(),
            ],
            &[
                &[1.0, 1.1, 8.0, 7.9, 3.0],
                &[2.0, 2.2, 1.0, 1.2, -1.0],
                &[3.0, 2.9, 6.0, 6.1, 4.0],
                &[4.0, 4.1, 2.0, 2.1, -3.0],
                &[5.0, 4.8, 7.0, 7.2, 3.5],
                &[6.0, 6.2, 3.0, 2.8, -2.0],
                &[7.0, 7.1, 5.0, 5.2, 2.0],
                &[8.0, 7.9, 4.0, 4.1, -4.0],
            ],
        );
        let engine = CoplotEngine::builder().seed(5).build();
        let result = engine
            .run(&d, &Selection::Eliminate { min_correlation: 0.95 })
            .unwrap();
        assert!(!result.removed.is_empty());
        let reports = engine.reports();
        assert!(reports.len() >= 8, "at least two rounds of four stages");
        assert!(!reports[0].cache_hit, "first round computes");
        assert!(reports[4].cache_hit, "second round reuses normalization");
        assert!(reports[5].cache_hit, "second round reuses contributions");
    }

    #[test]
    fn cache_counters_increment_for_shared_selections() {
        wl_obs::set_enabled(true);
        let before = wl_obs::registry().snapshot();
        let data = structured_data();
        let engine = CoplotEngine::builder().seed(21).build();
        engine.run(&data, &Selection::All).unwrap(); // cold: normalized miss
        engine.run(&data, &Selection::All).unwrap(); // warm: normalized + contributions hit
        engine
            .run(&data, &Selection::SubsetShared(vec![0, 2]))
            .unwrap();
        let after = wl_obs::registry().snapshot();
        // Delta assertions — the registry is global and tests run
        // concurrently, so check growth by at least this test's activity.
        let grew = |name: &str, by: u64| {
            assert!(
                after.counter(name) >= before.counter(name) + by,
                "{name}: {} -> {}",
                before.counter(name),
                after.counter(name)
            );
        };
        grew("engine.cache.normalized.miss", 1);
        grew("engine.cache.normalized.hit", 1);
        grew("engine.cache.contributions.hit", 1);
        grew("engine.cache.contributions.miss", 1);
        grew("engine.shared_selections", 1);
        // All three selections combined cached contributions.
        grew("engine.selection.diss.cached", 3);
        assert!(after.counter("engine.cache.normalized.hit") > 0);
        assert!(after.counter("engine.cache.normalized.miss") > 0);
    }

    #[test]
    fn report_table_renders_every_stage() {
        let data = structured_data();
        let engine = CoplotEngine::default();
        engine.run(&data, &Selection::All).unwrap();
        let table = StageReportTable(&engine.reports()).to_string();
        for stage in ["normalize", "dissimilarity", "embedding", "arrows"] {
            assert!(table.contains(stage), "missing {stage} in:\n{table}");
        }
        assert!(table.contains("miss"));
    }

    #[test]
    fn embedding_report_carries_restart_thetas() {
        let data = structured_data();
        let engine = CoplotEngine::builder().restarts(3).build();
        let r = engine.run(&data, &Selection::All).unwrap();
        let embed = &engine.reports()[2];
        assert_eq!(embed.stage, Stage::Embedding);
        assert_eq!(embed.theta_per_restart.len(), 4);
        assert!(embed.iterations > 0);
        let min = embed
            .theta_per_restart
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min, r.alienation);
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in [
            Stage::Normalize,
            Stage::Dissimilarity,
            Stage::Embedding,
            Stage::Arrows,
        ] {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::from_name("nope"), None);
    }
}
