//! The unified analysis request/response wire format.
//!
//! Every consumer of the pipeline — the `wl` CLI, the reproduction
//! binaries, and the `wl-serve` HTTP service — speaks exactly one API:
//! build an [`AnalysisRequest`], execute it, render an
//! [`AnalysisResponse`]. The CLI subcommands are thin adapters over these
//! types, so a server response and the CLI's output for the same request
//! are the same bytes by construction (golden-tested, not hoped for).
//!
//! The wire format is JSON over `wl-obs`'s dependency-free parser. A
//! request is **canonicalized** before anything hashes or executes it:
//! fields get a fixed serialization order, per-operation defaults are
//! filled in, fields irrelevant to the operation are reset to their
//! defaults, and non-finite numbers are rejected. Canonicalization is
//! idempotent and key-order-insensitive (property-tested), so two
//! semantically equal requests always produce the same
//! [`AnalysisRequest::canonical_digest`] — the cache key half that makes
//! `wl-serve`'s content-addressed result cache actually hit.
//!
//! Numbers ride JSON's `f64` space: floats serialize via Rust's shortest
//! round-trip `Display`, and integer fields are validated to stay at or
//! below 2^53 so the parse back is exact.
//!
//! All malformations are typed [`ApiError`]s (never panics): `Json` for
//! unparseable bodies, `Schema` for missing/unknown/mistyped fields,
//! `Value` for out-of-range or non-finite values. HTTP maps all three to
//! 400.

use std::fmt;

use crate::dissimilarity::DissimilarityMatrix;
use crate::error::CoplotError;
use crate::pipeline::CoplotResult;
use wl_linalg::Matrix;
use wl_obs::{escape_str, parse_json, JsonValue};

/// The paper's eight Table 1 variable codes — the default variable set for
/// `coplot` and `subset` requests.
pub const DEFAULT_VARS: [&str; 8] = ["Rm", "Ri", "Pm", "Pi", "Cm", "Ci", "Im", "Ii"];

/// Default job count per synthesized workload (the golden-snapshot size).
pub const DEFAULT_JOBS: u64 = 8192;
/// Default seed (the paper-reproduction seed used across the repo).
pub const DEFAULT_SEED: u64 = 1999;
/// Default subset size for `subset` requests (the paper found a
/// 3-variable representative set).
pub const DEFAULT_SUBSET_SIZE: u64 = 3;
/// Default alienation ceiling for `subset` requests (the paper's "good
/// fit" threshold).
pub const DEFAULT_MAX_ALIENATION: f64 = 0.15;
/// Default number of ranked subsets to return.
pub const DEFAULT_TOP: u64 = 5;

/// Largest integer exactly representable in the JSON number space (2^53);
/// integer fields above this would not round-trip.
pub const MAX_EXACT_INT: u64 = 1 << 53;

/// Trace formats a `Paths` dataset may declare via the request's `format`
/// field. The labels mirror `wl_trace::TraceFormat::label()`; the list is
/// duplicated here because the ingestion crate sits above this one in the
/// dependency order.
pub const KNOWN_FORMATS: [&str; 3] = ["swf", "gwf", "weblog"];

/// Wire-API versions this build understands. Version 1 is the original
/// flat [`AnalysisRequest`] object; version 2 is the [`Envelope`] form
/// that also carries distribution [`ShardRequest`]s. Advertised by
/// `GET /healthz` and `GET /v1/datasets`.
pub const API_VERSIONS: [u64; 2] = [1, 2];

/// Which analysis an [`AnalysisRequest`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// The Co-plot map (paper §4–§7).
    Coplot,
    /// The Hurst-estimate matrix (paper §5's self-similarity columns).
    Hurst,
    /// The representative-variable subset search (paper §8).
    Subset,
}

impl Operation {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Operation::Coplot => "coplot",
            Operation::Hurst => "hurst",
            Operation::Subset => "subset",
        }
    }

    /// Parse a wire label.
    pub fn from_label(s: &str) -> Option<Operation> {
        match s {
            "coplot" => Some(Operation::Coplot),
            "hurst" => Some(Operation::Hurst),
            "subset" => Some(Operation::Subset),
            _ => None,
        }
    }
}

/// Which data an [`AnalysisRequest`] runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetSpec {
    /// A named, deterministically synthesized dataset (`table1`, `models`,
    /// ...). Because synthesis is a pure function of (name, jobs, seed),
    /// the spec *is* the content; dataset digests hash exactly that.
    Named(String),
    /// Trace files (SWF/GWF/web logs) on the executor's filesystem;
    /// digests hash the canonical parsed record stream, so the same jobs
    /// digest identically regardless of the on-disk format.
    Paths(Vec<String>),
}

/// One request against the analysis API — the single type the CLI, the
/// repro binaries, and `wl-serve` all build and execute.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRequest {
    /// The analysis to run.
    pub op: Operation,
    /// The data to run it on.
    pub dataset: DatasetSpec,
    /// Jobs per synthesized workload (named datasets only; ignored with
    /// `Paths`, where the files define the jobs).
    pub jobs: u64,
    /// Seed for both dataset synthesis and the MDS restarts.
    pub seed: u64,
    /// Variable codes for `coplot`/`subset` (empty = [`DEFAULT_VARS`];
    /// always empty after canonicalization for `hurst`).
    pub vars: Vec<String>,
    /// Trace format of a `Paths` dataset ([`KNOWN_FORMATS`]); `None` means
    /// auto-detect per file. Named datasets carry their own format, so
    /// canonicalization clears this field for them.
    pub format: Option<String>,
    /// `coplot` only: run variable elimination at this threshold.
    pub min_correlation: Option<f64>,
    /// `subset` only: subset size `k`.
    pub subset_size: u64,
    /// `subset` only: alienation ceiling.
    pub max_alienation: f64,
    /// `subset` only: how many ranked subsets to return.
    pub top: u64,
    /// Soft per-request deadline in milliseconds. Transport metadata: the
    /// executor aborts between stages once it expires, but it does not
    /// change the result of a request that completes, so it is excluded
    /// from [`canonical_digest`](AnalysisRequest::canonical_digest).
    pub deadline_ms: Option<u64>,
}

impl AnalysisRequest {
    /// A request for `op` on `dataset` with every other field at its
    /// default.
    pub fn new(op: Operation, dataset: DatasetSpec) -> AnalysisRequest {
        AnalysisRequest {
            op,
            dataset,
            jobs: DEFAULT_JOBS,
            seed: DEFAULT_SEED,
            vars: Vec::new(),
            format: None,
            min_correlation: None,
            subset_size: DEFAULT_SUBSET_SIZE,
            max_alienation: DEFAULT_MAX_ALIENATION,
            top: DEFAULT_TOP,
            deadline_ms: None,
        }
    }

    /// Validate and normalize into canonical form: fill defaults, reset
    /// fields the operation ignores, reject non-finite and out-of-range
    /// values. Canonicalization is idempotent, and requests differing only
    /// in ignored fields or JSON key order canonicalize identically.
    ///
    /// # Errors
    /// [`ApiError`] with kind `Value` for anything out of range.
    pub fn canonicalize(&self) -> Result<AnalysisRequest, ApiError> {
        let mut r = self.clone();
        check_int("jobs", r.jobs)?;
        check_int("seed", r.seed)?;
        if r.jobs == 0 {
            return Err(ApiError::value("jobs must be positive"));
        }
        if let Some(fmt) = &r.format {
            if !KNOWN_FORMATS.contains(&fmt.as_str()) {
                return Err(ApiError::value(format!(
                    "format must be one of {KNOWN_FORMATS:?}, got {fmt:?}"
                )));
            }
        }
        match &r.dataset {
            DatasetSpec::Named(name) => {
                if name.is_empty() {
                    return Err(ApiError::value("dataset name must not be empty"));
                }
                // Named datasets are synthesized with a fixed per-dataset
                // format; a stray `format` must not perturb the digest.
                r.format = None;
            }
            DatasetSpec::Paths(paths) => {
                if paths.is_empty() {
                    return Err(ApiError::value("dataset paths must not be empty"));
                }
                if paths.iter().any(|p| p.is_empty()) {
                    return Err(ApiError::value("dataset paths must not contain empty paths"));
                }
                // The files define the job count; neutralize it so
                // path-dataset requests differing only in a stray `jobs`
                // digest identically.
                r.jobs = DEFAULT_JOBS;
            }
        }
        if r.vars.iter().any(|v| v.is_empty()) {
            return Err(ApiError::value("vars must not contain empty codes"));
        }
        match r.op {
            Operation::Coplot => {
                if r.vars.is_empty() {
                    r.vars = DEFAULT_VARS.iter().map(|s| s.to_string()).collect();
                }
                if let Some(mc) = r.min_correlation {
                    if !mc.is_finite() || !(0.0..=1.0).contains(&mc) {
                        return Err(ApiError::value("min_correlation must be finite in [0, 1]"));
                    }
                }
                r.subset_size = DEFAULT_SUBSET_SIZE;
                r.max_alienation = DEFAULT_MAX_ALIENATION;
                r.top = DEFAULT_TOP;
            }
            Operation::Hurst => {
                r.vars.clear();
                r.min_correlation = None;
                r.subset_size = DEFAULT_SUBSET_SIZE;
                r.max_alienation = DEFAULT_MAX_ALIENATION;
                r.top = DEFAULT_TOP;
            }
            Operation::Subset => {
                if r.vars.is_empty() {
                    r.vars = DEFAULT_VARS.iter().map(|s| s.to_string()).collect();
                }
                r.min_correlation = None;
                if !(2..=32).contains(&r.subset_size) {
                    return Err(ApiError::value("subset_size must be in 2..=32"));
                }
                if !r.max_alienation.is_finite() || r.max_alienation < 0.0 {
                    return Err(ApiError::value("max_alienation must be finite and >= 0"));
                }
                if !(1..=1000).contains(&r.top) {
                    return Err(ApiError::value("top must be in 1..=1000"));
                }
            }
        }
        if let Some(d) = r.deadline_ms {
            check_int("deadline_ms", d)?;
            if d == 0 {
                return Err(ApiError::value("deadline_ms must be positive"));
            }
        }
        Ok(r)
    }

    /// Canonical JSON encoding: canonicalized fields in fixed order.
    /// `deadline_ms` is included when set (it matters on the wire), but
    /// never in the [`canonical_digest`](AnalysisRequest::canonical_digest).
    ///
    /// # Errors
    /// The canonicalization's [`ApiError`]s.
    pub fn to_canonical_json(&self) -> Result<String, ApiError> {
        let r = self.canonicalize()?;
        Ok(r.encode(true))
    }

    /// FNV-1a digest of the canonical encoding *without* `deadline_ms` —
    /// the request half of `wl-serve`'s cache key.
    ///
    /// # Errors
    /// The canonicalization's [`ApiError`]s.
    pub fn canonical_digest(&self) -> Result<u64, ApiError> {
        let r = self.canonicalize()?;
        Ok(fnv1a(r.encode(false).as_bytes()))
    }

    /// Serialize (canonical field order; the struct's values as-is —
    /// callers wanting full normalization go through
    /// [`to_canonical_json`](AnalysisRequest::to_canonical_json)).
    pub fn to_json(&self) -> String {
        self.encode(true)
    }

    fn encode(&self, with_deadline: bool) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"op\":\"");
        s.push_str(self.op.label());
        s.push_str("\",\"dataset\":");
        match &self.dataset {
            DatasetSpec::Named(name) => {
                s.push_str("{\"name\":\"");
                s.push_str(&escape_str(name));
                s.push_str("\"}");
            }
            DatasetSpec::Paths(paths) => {
                s.push_str("{\"paths\":[");
                push_str_array(&mut s, paths);
                s.push_str("]}");
            }
        }
        s.push_str(&format!(",\"jobs\":{},\"seed\":{}", self.jobs, self.seed));
        s.push_str(",\"vars\":[");
        push_str_array(&mut s, &self.vars);
        s.push(']');
        if let Some(fmt) = &self.format {
            s.push_str(",\"format\":\"");
            s.push_str(&escape_str(fmt));
            s.push('"');
        }
        if let Some(mc) = self.min_correlation {
            s.push_str(&format!(",\"min_correlation\":{mc}"));
        }
        if self.op == Operation::Subset {
            s.push_str(&format!(
                ",\"subset_size\":{},\"max_alienation\":{},\"top\":{}",
                self.subset_size, self.max_alienation, self.top
            ));
        }
        if with_deadline {
            if let Some(d) = self.deadline_ms {
                s.push_str(&format!(",\"deadline_ms\":{d}"));
            }
        }
        s.push('}');
        s
    }

    /// Parse a request from JSON. Unknown fields, wrong types and
    /// unparseable bodies are typed errors, never panics.
    ///
    /// # Errors
    /// [`ApiError`] of kind `Json` (bad JSON), `Schema` (bad shape), or
    /// `Value` (out-of-range numbers; parsing canonicalizes lightly enough
    /// to surface those early).
    pub fn from_json(text: &str) -> Result<AnalysisRequest, ApiError> {
        let v = parse_json(text).map_err(ApiError::json)?;
        AnalysisRequest::from_value(&v, false)
    }

    /// Parse a request from an already-parsed JSON value. With
    /// `allow_version` a literal `"api_version"` key is tolerated (the
    /// [`Envelope`] parser has already consumed it); everything else is
    /// identical to [`from_json`](AnalysisRequest::from_json).
    fn from_value(v: &JsonValue, allow_version: bool) -> Result<AnalysisRequest, ApiError> {
        let obj = as_object(v, "request")?;
        for key in obj.keys() {
            match key.as_str() {
                "op" | "dataset" | "jobs" | "seed" | "vars" | "format" | "min_correlation"
                | "subset_size" | "max_alienation" | "top" | "deadline_ms" => {}
                "api_version" if allow_version => {}
                other => {
                    return Err(ApiError::schema(format!("unknown field {other:?}")));
                }
            }
        }
        let op_label = get_str(v, "op")?;
        let op = Operation::from_label(op_label).ok_or_else(|| {
            ApiError::schema(format!(
                "op must be \"coplot\", \"hurst\" or \"subset\", got {op_label:?}"
            ))
        })?;
        let dataset_v = v
            .get("dataset")
            .ok_or_else(|| ApiError::schema("missing field \"dataset\""))?;
        let dataset_obj = as_object(dataset_v, "dataset")?;
        let dataset = match (dataset_obj.get("name"), dataset_obj.get("paths")) {
            (Some(name), None) if dataset_obj.len() == 1 => DatasetSpec::Named(
                name.as_str()
                    .ok_or_else(|| ApiError::schema("dataset.name must be a string"))?
                    .to_string(),
            ),
            (None, Some(paths)) if dataset_obj.len() == 1 => {
                let JsonValue::Array(items) = paths else {
                    return Err(ApiError::schema("dataset.paths must be an array"));
                };
                let mut out = Vec::with_capacity(items.len());
                for p in items {
                    out.push(
                        p.as_str()
                            .ok_or_else(|| ApiError::schema("dataset.paths must hold strings"))?
                            .to_string(),
                    );
                }
                DatasetSpec::Paths(out)
            }
            _ => {
                return Err(ApiError::schema(
                    "dataset must be {\"name\": ...} or {\"paths\": [...]}",
                ))
            }
        };
        let mut r = AnalysisRequest::new(op, dataset);
        if let Some(jobs) = opt_u64(v, "jobs")? {
            r.jobs = jobs;
        }
        if let Some(seed) = opt_u64(v, "seed")? {
            r.seed = seed;
        }
        if let Some(vars) = v.get("vars") {
            let JsonValue::Array(items) = vars else {
                return Err(ApiError::schema("vars must be an array of strings"));
            };
            r.vars = Vec::with_capacity(items.len());
            for item in items {
                r.vars.push(
                    item.as_str()
                        .ok_or_else(|| ApiError::schema("vars must hold strings"))?
                        .to_string(),
                );
            }
        }
        match v.get("format") {
            None | Some(JsonValue::Null) => {}
            Some(f) => {
                r.format = Some(
                    f.as_str()
                        .ok_or_else(|| ApiError::schema("format must be a string"))?
                        .to_string(),
                );
            }
        }
        if let Some(mc) = opt_f64(v, "min_correlation")? {
            r.min_correlation = Some(mc);
        }
        if let Some(k) = opt_u64(v, "subset_size")? {
            r.subset_size = k;
        }
        if let Some(a) = opt_f64(v, "max_alienation")? {
            r.max_alienation = a;
        }
        if let Some(t) = opt_u64(v, "top")? {
            r.top = t;
        }
        if let Some(d) = opt_u64(v, "deadline_ms")? {
            r.deadline_ms = Some(d);
        }
        Ok(r)
    }
}

/// One response from the analysis API; the variant always matches the
/// request's [`Operation`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisResponse {
    /// A Co-plot map.
    Coplot(CoplotOut),
    /// A Hurst-estimate matrix.
    Hurst(HurstOut),
    /// Ranked variable subsets.
    Subset(SubsetOut),
}

impl AnalysisResponse {
    /// Wire label of the carried result ("coplot", "hurst", "subset").
    pub fn op(&self) -> Operation {
        match self {
            AnalysisResponse::Coplot(_) => Operation::Coplot,
            AnalysisResponse::Hurst(_) => Operation::Hurst,
            AnalysisResponse::Subset(_) => Operation::Subset,
        }
    }

    /// Serialize in the fixed wire order. Responses are pure functions of
    /// the canonical request — no timestamps, no timings — which is what
    /// lets the CLI and the server emit byte-identical bodies.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"op\":\"");
        s.push_str(self.op().label());
        s.push_str("\",\"result\":");
        match self {
            AnalysisResponse::Coplot(c) => c.encode(&mut s),
            AnalysisResponse::Hurst(h) => h.encode(&mut s),
            AnalysisResponse::Subset(x) => x.encode(&mut s),
        }
        s.push('}');
        s
    }

    /// Parse a response from JSON.
    ///
    /// # Errors
    /// [`ApiError`] of kind `Json` or `Schema`.
    pub fn from_json(text: &str) -> Result<AnalysisResponse, ApiError> {
        let v = parse_json(text).map_err(ApiError::json)?;
        AnalysisResponse::from_value(&v)
    }

    fn from_value(v: &JsonValue) -> Result<AnalysisResponse, ApiError> {
        let op_label = get_str(v, "op")?;
        let op = Operation::from_label(op_label)
            .ok_or_else(|| ApiError::schema(format!("unknown op {op_label:?}")))?;
        let result = v
            .get("result")
            .ok_or_else(|| ApiError::schema("missing field \"result\""))?;
        Ok(match op {
            Operation::Coplot => AnalysisResponse::Coplot(CoplotOut::decode(result)?),
            Operation::Hurst => AnalysisResponse::Hurst(HurstOut::decode(result)?),
            Operation::Subset => AnalysisResponse::Subset(SubsetOut::decode(result)?),
        })
    }
}

/// A serializable Co-plot map (the wire shape of [`CoplotResult`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CoplotOut {
    /// Observation names.
    pub observations: Vec<String>,
    /// One `[x, y]` per observation.
    pub coords: Vec<[f64; 2]>,
    /// Fitted arrows.
    pub arrows: Vec<ArrowOut>,
    /// Guttman's coefficient of alienation.
    pub alienation: f64,
    /// Kruskal stress-1.
    pub stress: f64,
    /// Upper-triangle dissimilarities in pair order.
    pub dissimilarities: Vec<f64>,
    /// Variables removed by elimination, in removal order.
    pub removed: Vec<String>,
}

/// A serializable arrow.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrowOut {
    /// Variable name.
    pub name: String,
    /// Unit direction `[x, y]`.
    pub direction: [f64; 2],
    /// Maximal projection correlation.
    pub correlation: f64,
}

impl CoplotOut {
    /// Capture an engine result for the wire.
    pub fn from_result(r: &CoplotResult) -> CoplotOut {
        CoplotOut {
            observations: r.observations.clone(),
            coords: (0..r.coords.rows())
                .map(|i| [r.coords[(i, 0)], r.coords[(i, 1)]])
                .collect(),
            arrows: r
                .arrows
                .iter()
                .map(|a| ArrowOut {
                    name: a.name.clone(),
                    direction: a.direction,
                    correlation: a.correlation,
                })
                .collect(),
            alienation: r.alienation,
            stress: r.stress,
            dissimilarities: r.dissimilarities.pairs().to_vec(),
            removed: r.removed.clone(),
        }
    }

    /// Rebuild a [`CoplotResult`] (for rendering the text/SVG map from a
    /// wire response — the CLI adapter path).
    ///
    /// # Errors
    /// [`ApiError`] of kind `Schema` when the shapes disagree.
    pub fn to_result(&self) -> Result<CoplotResult, ApiError> {
        let n = self.observations.len();
        if self.coords.len() != n {
            return Err(ApiError::schema(format!(
                "coords rows ({}) != observations ({n})",
                self.coords.len()
            )));
        }
        if self.dissimilarities.len() != n * (n - 1) / 2 {
            return Err(ApiError::schema(format!(
                "dissimilarities length {} is not C({n},2)",
                self.dissimilarities.len()
            )));
        }
        let mut flat = Vec::with_capacity(2 * n);
        for c in &self.coords {
            flat.extend_from_slice(c);
        }
        Ok(CoplotResult {
            observations: self.observations.clone(),
            coords: Matrix::from_vec(n, 2, flat),
            arrows: self
                .arrows
                .iter()
                .map(|a| crate::arrows::Arrow {
                    name: a.name.clone(),
                    direction: a.direction,
                    correlation: a.correlation,
                })
                .collect(),
            alienation: self.alienation,
            stress: self.stress,
            dissimilarities: DissimilarityMatrix::from_pairs(n, self.dissimilarities.clone()),
            removed: self.removed.clone(),
        })
    }

    fn encode(&self, s: &mut String) {
        s.push_str("{\"observations\":[");
        push_str_array(s, &self.observations);
        s.push_str("],\"coords\":[");
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{},{}]", c[0], c[1]));
        }
        s.push_str("],\"arrows\":[");
        for (i, a) in self.arrows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"direction\":[{},{}],\"correlation\":{}}}",
                escape_str(&a.name),
                a.direction[0],
                a.direction[1],
                a.correlation
            ));
        }
        s.push_str(&format!(
            "],\"alienation\":{},\"stress\":{},\"dissimilarities\":[",
            self.alienation, self.stress
        ));
        push_f64_array(s, &self.dissimilarities);
        s.push_str("],\"removed\":[");
        push_str_array(s, &self.removed);
        s.push_str("]}");
    }

    fn decode(v: &JsonValue) -> Result<CoplotOut, ApiError> {
        let observations = get_str_array(v, "observations")?;
        let coords_v = get_array(v, "coords")?;
        let mut coords = Vec::with_capacity(coords_v.len());
        for c in coords_v {
            coords.push(get_pair(c, "coords entry")?);
        }
        let arrows_v = get_array(v, "arrows")?;
        let mut arrows = Vec::with_capacity(arrows_v.len());
        for a in arrows_v {
            arrows.push(ArrowOut {
                name: get_str(a, "name")?.to_string(),
                direction: get_pair(
                    a.get("direction")
                        .ok_or_else(|| ApiError::schema("missing field \"direction\""))?,
                    "direction",
                )?,
                correlation: get_f64(a, "correlation")?,
            });
        }
        Ok(CoplotOut {
            observations,
            coords,
            arrows,
            alienation: get_f64(v, "alienation")?,
            stress: get_f64(v, "stress")?,
            dissimilarities: get_f64_array(v, "dissimilarities")?,
            removed: get_str_array(v, "removed")?,
        })
    }
}

/// A serializable Hurst-estimate matrix: one row per workload, one column
/// per (estimator, series) pair; `None` where an estimator declined.
#[derive(Debug, Clone, PartialEq)]
pub struct HurstOut {
    /// Workload names (row labels).
    pub workloads: Vec<String>,
    /// Column labels (estimator label + series code, e.g. `"R/Sa"`).
    pub columns: Vec<String>,
    /// `rows[w][c]`: the estimate, or `None`.
    pub rows: Vec<Vec<Option<f64>>>,
}

impl HurstOut {
    fn encode(&self, s: &mut String) {
        s.push_str("{\"workloads\":[");
        push_str_array(s, &self.workloads);
        s.push_str("],\"columns\":[");
        push_str_array(s, &self.columns);
        s.push_str("],\"rows\":[");
        push_opt_rows(s, &self.rows);
        s.push_str("]}");
    }

    fn decode(v: &JsonValue) -> Result<HurstOut, ApiError> {
        Ok(HurstOut {
            workloads: get_str_array(v, "workloads")?,
            columns: get_str_array(v, "columns")?,
            rows: decode_opt_rows(v)?,
        })
    }
}

/// Encode `rows` as nested JSON arrays of numbers-or-null (the body of a
/// Hurst matrix, shared by [`HurstOut`] and hurst [`ShardResponse`]s).
fn push_opt_rows(s: &mut String, rows: &[Vec<Option<f64>>]) {
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        for (k, cell) in row.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            match cell {
                Some(h) => s.push_str(&format!("{h}")),
                None => s.push_str("null"),
            }
        }
        s.push(']');
    }
}

fn decode_opt_rows(v: &JsonValue) -> Result<Vec<Vec<Option<f64>>>, ApiError> {
    let rows_v = get_array(v, "rows")?;
    let mut rows = Vec::with_capacity(rows_v.len());
    for row in rows_v {
        let JsonValue::Array(cells) = row else {
            return Err(ApiError::schema("rows must hold arrays"));
        };
        let mut out = Vec::with_capacity(cells.len());
        for cell in cells {
            out.push(match cell {
                JsonValue::Null => None,
                JsonValue::Number(h) => Some(*h),
                _ => return Err(ApiError::schema("row cells must be numbers or null")),
            });
        }
        rows.push(out);
    }
    Ok(rows)
}

/// Serializable ranked subset-search results.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetOut {
    /// Best subsets first.
    pub results: Vec<SubsetEntry>,
}

/// One scored subset.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetEntry {
    /// Chosen variable names.
    pub variables: Vec<String>,
    /// Alienation of the subset's map.
    pub alienation: f64,
    /// Mean arrow correlation of the subset's map.
    pub mean_correlation: f64,
    /// Procrustes RMSD against the full-variable map.
    pub map_conservation_rmsd: f64,
}

impl SubsetOut {
    fn encode(&self, s: &mut String) {
        s.push_str("{\"results\":[");
        push_subset_entries(s, &self.results);
        s.push_str("]}");
    }

    fn decode(v: &JsonValue) -> Result<SubsetOut, ApiError> {
        Ok(SubsetOut {
            results: decode_subset_entries(get_array(v, "results")?)?,
        })
    }
}

/// Encode scored subsets (shared by [`SubsetOut`] and subset
/// [`ShardResponse`]s).
fn push_subset_entries(s: &mut String, entries: &[SubsetEntry]) {
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"variables\":[");
        push_str_array(s, &e.variables);
        s.push_str(&format!(
            "],\"alienation\":{},\"mean_correlation\":{},\"map_conservation_rmsd\":{}}}",
            e.alienation, e.mean_correlation, e.map_conservation_rmsd
        ));
    }
}

fn decode_subset_entries(items: &[JsonValue]) -> Result<Vec<SubsetEntry>, ApiError> {
    let mut results = Vec::with_capacity(items.len());
    for e in items {
        results.push(SubsetEntry {
            variables: get_str_array(e, "variables")?,
            alienation: get_f64(e, "alienation")?,
            mean_correlation: get_f64(e, "mean_correlation")?,
            map_conservation_rmsd: get_f64(e, "map_conservation_rmsd")?,
        });
    }
    Ok(results)
}

/// The versioned wire envelope every endpoint parses.
///
/// A body **without** an `api_version` key is version 1: the original
/// flat [`AnalysisRequest`] object, parsed exactly as before, so every
/// pre-envelope client, golden test and cache digest keeps its bytes. A
/// body with `"api_version":1` is the same flat object with the version
/// key tolerated. Version 2 wraps payloads as
/// `{"api_version":2,"op":...,"body":{...}}` and adds the distribution
/// op `"shard"` carrying a [`ShardRequest`]. Any other version is a
/// typed [`ApiErrorKind::Version`] error (HTTP 400), never a parse
/// panic.
///
/// [`Envelope::canonical_digest`] always delegates to the carried
/// request's canonical **v1** encoding, so the same analysis arriving as
/// v1 or v2 shares one cache entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Wire API version (a member of [`API_VERSIONS`]).
    pub api_version: u64,
    /// The carried request.
    pub payload: EnvelopePayload,
}

/// What an [`Envelope`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvelopePayload {
    /// A plain analysis request (all versions).
    Analysis(AnalysisRequest),
    /// A distribution shard request (version 2 only).
    Shard(ShardRequest),
}

impl Envelope {
    /// Wrap a request in the version-1 (flat) encoding.
    pub fn v1(request: AnalysisRequest) -> Envelope {
        Envelope {
            api_version: 1,
            payload: EnvelopePayload::Analysis(request),
        }
    }

    /// Wrap a request in the version-2 envelope encoding.
    pub fn v2(request: AnalysisRequest) -> Envelope {
        Envelope {
            api_version: 2,
            payload: EnvelopePayload::Analysis(request),
        }
    }

    /// Wrap a shard request (version 2 by construction).
    pub fn shard(request: ShardRequest) -> Envelope {
        Envelope {
            api_version: 2,
            payload: EnvelopePayload::Shard(request),
        }
    }

    /// Wire label of the carried op (`"coplot"`, `"hurst"`, `"subset"`,
    /// `"shard"`).
    pub fn op_label(&self) -> &'static str {
        match &self.payload {
            EnvelopePayload::Analysis(r) => r.op.label(),
            EnvelopePayload::Shard(_) => "shard",
        }
    }

    /// Unwrap the analysis request, rejecting shard payloads (for
    /// endpoints that execute analyses).
    ///
    /// # Errors
    /// [`ApiError`] of kind `Schema` for a shard payload.
    pub fn into_analysis(self) -> Result<AnalysisRequest, ApiError> {
        match self.payload {
            EnvelopePayload::Analysis(r) => Ok(r),
            EnvelopePayload::Shard(_) => Err(ApiError::schema(
                "shard requests must be POSTed to /v2/shard",
            )),
        }
    }

    /// Parse any supported version from JSON.
    ///
    /// # Errors
    /// [`ApiError`] of kind `Json`, `Schema`, `Value`, or `Version` for
    /// an unsupported `api_version`.
    pub fn from_json(text: &str) -> Result<Envelope, ApiError> {
        let v = parse_json(text).map_err(ApiError::json)?;
        let obj = as_object(&v, "request")?;
        let Some(version_v) = obj.get("api_version") else {
            return Ok(Envelope::v1(AnalysisRequest::from_value(&v, false)?));
        };
        let version = version_v.as_u64().ok_or_else(|| {
            ApiError::version("api_version must be a non-negative integer")
        })?;
        match version {
            1 => Ok(Envelope::v1(AnalysisRequest::from_value(&v, true)?)),
            2 => {
                for key in obj.keys() {
                    match key.as_str() {
                        "api_version" | "op" | "body" => {}
                        other => {
                            return Err(ApiError::schema(format!(
                                "unknown field {other:?} in v2 envelope"
                            )));
                        }
                    }
                }
                let op_label = get_str(&v, "op")?;
                let body = v
                    .get("body")
                    .ok_or_else(|| ApiError::schema("missing field \"body\""))?;
                if op_label == "shard" {
                    return Ok(Envelope::shard(ShardRequest::from_value(body)?));
                }
                let op = Operation::from_label(op_label).ok_or_else(|| {
                    ApiError::schema(format!(
                        "op must be \"coplot\", \"hurst\", \"subset\" or \"shard\", got {op_label:?}"
                    ))
                })?;
                let body_obj = as_object(body, "body")?;
                let request = if body_obj.contains_key("op") {
                    AnalysisRequest::from_value(body, false)?
                } else {
                    // The envelope op names the analysis; a body without
                    // its own "op" inherits it.
                    let mut filled = body_obj.clone();
                    filled.insert("op".to_string(), JsonValue::String(op_label.to_string()));
                    AnalysisRequest::from_value(&JsonValue::Object(filled), false)?
                };
                if request.op != op {
                    return Err(ApiError::schema(format!(
                        "envelope op {op_label:?} does not match body op {:?}",
                        request.op.label()
                    )));
                }
                Ok(Envelope::v2(request))
            }
            other => Err(ApiError::version(format!(
                "unsupported api_version {other} (supported: {API_VERSIONS:?})"
            ))),
        }
    }

    /// Serialize in the envelope's own version. Version 1 emits the flat
    /// request (the pre-envelope bytes); version 2 emits the wrapped
    /// form with the full flat request as `body`.
    pub fn to_json(&self) -> String {
        match &self.payload {
            EnvelopePayload::Analysis(r) if self.api_version == 1 => r.to_json(),
            EnvelopePayload::Analysis(r) => format!(
                "{{\"api_version\":{},\"op\":\"{}\",\"body\":{}}}",
                self.api_version,
                r.op.label(),
                r.encode(true)
            ),
            EnvelopePayload::Shard(s) => format!(
                "{{\"api_version\":{},\"op\":\"shard\",\"body\":{}}}",
                self.api_version,
                s.encode(true)
            ),
        }
    }

    /// The carried request's canonical digest — identical whether the
    /// request arrived as v1 or v2, which keeps the content-addressed
    /// cache's keys stable across the redesign.
    ///
    /// # Errors
    /// The canonicalization's [`ApiError`]s.
    pub fn canonical_digest(&self) -> Result<u64, ApiError> {
        match &self.payload {
            EnvelopePayload::Analysis(r) => r.canonical_digest(),
            EnvelopePayload::Shard(s) => s.canonical_digest(),
        }
    }
}

/// One shard of a distributed analysis: the full base request plus which
/// contiguous slice of its work this worker owns. Slices use *absolute*
/// indices so a shard's result is independent of how the coordinator
/// partitioned the total — the heart of the nodes×threads bit-identity
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRequest {
    /// The analysis being distributed (same canonical form as a
    /// single-node request; shard seeding derives from its seed).
    pub base: AnalysisRequest,
    /// The slice of work.
    pub part: ShardPart,
}

/// The contiguous work slice a [`ShardRequest`] asks for; ranges are
/// half-open `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPart {
    /// MDS starts `lo..hi` of a coplot request (start 0 is the classical
    /// init; start `i > 0` seeds from `restart_seed(seed, i)`).
    Restarts {
        /// First start index (inclusive).
        lo: u64,
        /// One past the last start index.
        hi: u64,
    },
    /// Workload rows `lo..hi` of a hurst request.
    Rows {
        /// First workload index (inclusive).
        lo: u64,
        /// One past the last workload index.
        hi: u64,
    },
    /// Lexicographic C(p,k) combination indices `lo..hi` of a subset
    /// request.
    Combos {
        /// First combination index (inclusive).
        lo: u64,
        /// One past the last combination index.
        hi: u64,
    },
    /// The whole request, for analyses that cannot be sliced (e.g.
    /// coplot with variable elimination).
    Whole,
}

impl ShardPart {
    /// Wire label of the slice kind.
    pub fn kind_label(&self) -> &'static str {
        match self {
            ShardPart::Restarts { .. } => "restarts",
            ShardPart::Rows { .. } => "rows",
            ShardPart::Combos { .. } => "combos",
            ShardPart::Whole => "whole",
        }
    }

    /// The half-open range, when the part has one.
    pub fn range(&self) -> Option<(u64, u64)> {
        match *self {
            ShardPart::Restarts { lo, hi }
            | ShardPart::Rows { lo, hi }
            | ShardPart::Combos { lo, hi } => Some((lo, hi)),
            ShardPart::Whole => None,
        }
    }

    fn encode(&self, s: &mut String) {
        s.push_str("{\"kind\":\"");
        s.push_str(self.kind_label());
        s.push('"');
        if let Some((lo, hi)) = self.range() {
            s.push_str(&format!(",\"lo\":{lo},\"hi\":{hi}"));
        }
        s.push('}');
    }

    fn from_value(v: &JsonValue) -> Result<ShardPart, ApiError> {
        let obj = as_object(v, "part")?;
        for key in obj.keys() {
            match key.as_str() {
                "kind" | "lo" | "hi" => {}
                other => {
                    return Err(ApiError::schema(format!(
                        "unknown field {other:?} in shard part"
                    )));
                }
            }
        }
        let kind = get_str(v, "kind")?;
        if kind == "whole" {
            if obj.len() != 1 {
                return Err(ApiError::schema("a \"whole\" part takes no range"));
            }
            return Ok(ShardPart::Whole);
        }
        let lo = opt_u64(v, "lo")?
            .ok_or_else(|| ApiError::schema("missing field \"lo\""))?;
        let hi = opt_u64(v, "hi")?
            .ok_or_else(|| ApiError::schema("missing field \"hi\""))?;
        match kind {
            "restarts" => Ok(ShardPart::Restarts { lo, hi }),
            "rows" => Ok(ShardPart::Rows { lo, hi }),
            "combos" => Ok(ShardPart::Combos { lo, hi }),
            other => Err(ApiError::schema(format!(
                "part kind must be \"restarts\", \"rows\", \"combos\" or \"whole\", got {other:?}"
            ))),
        }
    }
}

impl ShardRequest {
    /// Validate and normalize: canonicalize the base request, check the
    /// slice range, and check the part kind matches the base op
    /// (restarts ⇒ plain coplot, rows ⇒ hurst, combos ⇒ subset).
    ///
    /// # Errors
    /// [`ApiError`] with kind `Value` for bad ranges or mismatched
    /// part/op pairs.
    pub fn canonicalize(&self) -> Result<ShardRequest, ApiError> {
        let base = self.base.canonicalize()?;
        if let Some((lo, hi)) = self.part.range() {
            check_int("lo", lo)?;
            check_int("hi", hi)?;
            if lo >= hi {
                return Err(ApiError::value(format!(
                    "shard range must be non-empty, got [{lo}, {hi})"
                )));
            }
        }
        let compatible = match self.part {
            ShardPart::Restarts { .. } => {
                base.op == Operation::Coplot && base.min_correlation.is_none()
            }
            ShardPart::Rows { .. } => base.op == Operation::Hurst,
            ShardPart::Combos { .. } => base.op == Operation::Subset,
            ShardPart::Whole => true,
        };
        if !compatible {
            return Err(ApiError::value(format!(
                "part kind {:?} cannot slice a {:?} request",
                self.part.kind_label(),
                base.op.label()
            )));
        }
        Ok(ShardRequest {
            base,
            part: self.part,
        })
    }

    /// Serialize (canonical field order).
    pub fn to_json(&self) -> String {
        self.encode(true)
    }

    fn encode(&self, with_deadline: bool) -> String {
        let mut s = String::with_capacity(320);
        s.push_str("{\"base\":");
        s.push_str(&self.base.encode(with_deadline));
        s.push_str(",\"part\":");
        self.part.encode(&mut s);
        s.push('}');
        s
    }

    /// Parse from JSON.
    ///
    /// # Errors
    /// [`ApiError`] of kind `Json`, `Schema`, or `Value`.
    pub fn from_json(text: &str) -> Result<ShardRequest, ApiError> {
        let v = parse_json(text).map_err(ApiError::json)?;
        ShardRequest::from_value(&v)
    }

    fn from_value(v: &JsonValue) -> Result<ShardRequest, ApiError> {
        let obj = as_object(v, "shard request")?;
        for key in obj.keys() {
            match key.as_str() {
                "base" | "part" => {}
                other => {
                    return Err(ApiError::schema(format!(
                        "unknown field {other:?} in shard request"
                    )));
                }
            }
        }
        let base_v = v
            .get("base")
            .ok_or_else(|| ApiError::schema("missing field \"base\""))?;
        let part_v = v
            .get("part")
            .ok_or_else(|| ApiError::schema("missing field \"part\""))?;
        Ok(ShardRequest {
            base: AnalysisRequest::from_value(base_v, false)?,
            part: ShardPart::from_value(part_v)?,
        })
    }

    /// FNV-1a digest of the canonical encoding without `deadline_ms`.
    ///
    /// # Errors
    /// The canonicalization's [`ApiError`]s.
    pub fn canonical_digest(&self) -> Result<u64, ApiError> {
        let r = self.canonicalize()?;
        Ok(fnv1a(r.encode(false).as_bytes()))
    }
}

/// A worker's answer to one [`ShardRequest`]; the variant matches the
/// request's [`ShardPart`] kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardResponse {
    /// The complete coplot map from the shard's restart window (the
    /// coordinator keeps the window whose alienation wins).
    Coplot(CoplotOut),
    /// Hurst rows for the shard's workload window, in row order.
    Hurst {
        /// Workload names for the window.
        workloads: Vec<String>,
        /// `rows[w][c]` per window workload, all 12 columns.
        rows: Vec<Vec<Option<f64>>>,
    },
    /// Scored subsets for the shard's combination window, in
    /// combination order — unranked; ranking happens once at reassembly.
    Subset {
        /// One entry per combination that met the alienation ceiling.
        entries: Vec<SubsetEntry>,
    },
    /// The complete response for a `Whole` shard.
    Whole(AnalysisResponse),
}

impl ShardResponse {
    /// Wire label of the carried shard kind.
    pub fn kind_label(&self) -> &'static str {
        match self {
            ShardResponse::Coplot(_) => "coplot",
            ShardResponse::Hurst { .. } => "hurst",
            ShardResponse::Subset { .. } => "subset",
            ShardResponse::Whole(_) => "whole",
        }
    }

    /// Serialize in the fixed wire order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"shard\":\"");
        s.push_str(self.kind_label());
        s.push_str("\",\"result\":");
        match self {
            ShardResponse::Coplot(c) => c.encode(&mut s),
            ShardResponse::Hurst { workloads, rows } => {
                s.push_str("{\"workloads\":[");
                push_str_array(&mut s, workloads);
                s.push_str("],\"rows\":[");
                push_opt_rows(&mut s, rows);
                s.push_str("]}");
            }
            ShardResponse::Subset { entries } => {
                s.push_str("{\"entries\":[");
                push_subset_entries(&mut s, entries);
                s.push_str("]}");
            }
            ShardResponse::Whole(r) => s.push_str(&r.to_json()),
        }
        s.push('}');
        s
    }

    /// Parse from JSON.
    ///
    /// # Errors
    /// [`ApiError`] of kind `Json` or `Schema`.
    pub fn from_json(text: &str) -> Result<ShardResponse, ApiError> {
        let v = parse_json(text).map_err(ApiError::json)?;
        let kind = get_str(&v, "shard")?;
        let result = v
            .get("result")
            .ok_or_else(|| ApiError::schema("missing field \"result\""))?;
        match kind {
            "coplot" => Ok(ShardResponse::Coplot(CoplotOut::decode(result)?)),
            "hurst" => Ok(ShardResponse::Hurst {
                workloads: get_str_array(result, "workloads")?,
                rows: decode_opt_rows(result)?,
            }),
            "subset" => Ok(ShardResponse::Subset {
                entries: decode_subset_entries(get_array(result, "entries")?)?,
            }),
            "whole" => Ok(ShardResponse::Whole(AnalysisResponse::from_value(result)?)),
            other => Err(ApiError::schema(format!(
                "shard must be \"coplot\", \"hurst\", \"subset\" or \"whole\", got {other:?}"
            ))),
        }
    }
}

/// The one typed error body every endpoint and shard op emits:
/// `{"error":{"kind":...,"message":...[,"retry_after_ms":N]}}`.
/// `retry_after_ms` appears exactly when the response also carries a
/// `Retry-After` header (503s), so machine clients get the backoff hint
/// without header parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// Stable kebab-case error class (`"bad-json"`, `"overloaded"`, ...).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
    /// Suggested client backoff, when the error is retryable.
    pub retry_after_ms: Option<u64>,
}

impl ErrorBody {
    /// An error body with no retry hint.
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind: kind.into(),
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Attach a retry hint.
    #[must_use]
    pub fn with_retry_after_ms(mut self, ms: u64) -> ErrorBody {
        self.retry_after_ms = Some(ms);
        self
    }

    /// The body for a request-malformation error.
    pub fn from_api_error(e: &ApiError) -> ErrorBody {
        ErrorBody::new(e.kind.label(), e.message.clone())
    }

    /// Serialize in the fixed wire order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"error\":{\"kind\":\"");
        s.push_str(&escape_str(&self.kind));
        s.push_str("\",\"message\":\"");
        s.push_str(&escape_str(&self.message));
        s.push('"');
        if let Some(ms) = self.retry_after_ms {
            s.push_str(&format!(",\"retry_after_ms\":{ms}"));
        }
        s.push_str("}}");
        s
    }

    /// Parse from JSON.
    ///
    /// # Errors
    /// [`ApiError`] of kind `Json` or `Schema`.
    pub fn from_json(text: &str) -> Result<ErrorBody, ApiError> {
        let v = parse_json(text).map_err(ApiError::json)?;
        let inner = v
            .get("error")
            .ok_or_else(|| ApiError::schema("missing field \"error\""))?;
        Ok(ErrorBody {
            kind: get_str(inner, "kind")?.to_string(),
            message: get_str(inner, "message")?.to_string(),
            retry_after_ms: opt_u64(inner, "retry_after_ms")?,
        })
    }
}

/// What kind of API malformation an [`ApiError`] reports; each maps to a
/// fixed HTTP status in `wl-serve` (all four are 400s — executor failures
/// ride [`CoplotError`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiErrorKind {
    /// The body was not valid JSON.
    Json,
    /// Valid JSON of the wrong shape (missing/unknown/mistyped field).
    Schema,
    /// Well-shaped but out-of-range or non-finite value.
    Value,
    /// An `api_version` this build does not speak ([`API_VERSIONS`]).
    Version,
}

impl ApiErrorKind {
    /// Stable kebab-case label (used in error bodies and metrics).
    pub fn label(&self) -> &'static str {
        match self {
            ApiErrorKind::Json => "bad-json",
            ApiErrorKind::Schema => "bad-schema",
            ApiErrorKind::Value => "bad-value",
            ApiErrorKind::Version => "bad-version",
        }
    }
}

/// A typed request/response malformation.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// Which class of malformation.
    pub kind: ApiErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl ApiError {
    /// A `Json`-kind error.
    pub fn json(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: ApiErrorKind::Json,
            message: message.into(),
        }
    }

    /// A `Schema`-kind error.
    pub fn schema(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: ApiErrorKind::Schema,
            message: message.into(),
        }
    }

    /// A `Value`-kind error.
    pub fn value(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: ApiErrorKind::Value,
            message: message.into(),
        }
    }

    /// A `Version`-kind error.
    pub fn version(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: ApiErrorKind::Version,
            message: message.into(),
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<ApiError> for CoplotError {
    fn from(e: ApiError) -> CoplotError {
        CoplotError::InvalidConfig(e.to_string())
    }
}

/// FNV-1a over a byte string (the digest primitive for requests and
/// datasets).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn check_int(field: &str, value: u64) -> Result<(), ApiError> {
    if value > MAX_EXACT_INT {
        return Err(ApiError::value(format!(
            "{field} must be <= 2^53 to round-trip through JSON numbers"
        )));
    }
    Ok(())
}

fn push_str_array(s: &mut String, items: &[String]) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(&escape_str(item));
        s.push('"');
    }
}

fn push_f64_array(s: &mut String, items: &[f64]) {
    for (i, x) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{x}"));
    }
}

fn as_object<'a>(
    v: &'a JsonValue,
    what: &str,
) -> Result<&'a std::collections::BTreeMap<String, JsonValue>, ApiError> {
    match v {
        JsonValue::Object(map) => Ok(map),
        _ => Err(ApiError::schema(format!("{what} must be a JSON object"))),
    }
}

fn get_str<'a>(v: &'a JsonValue, field: &str) -> Result<&'a str, ApiError> {
    v.get(field)
        .ok_or_else(|| ApiError::schema(format!("missing field {field:?}")))?
        .as_str()
        .ok_or_else(|| ApiError::schema(format!("{field} must be a string")))
}

fn get_f64(v: &JsonValue, field: &str) -> Result<f64, ApiError> {
    let x = v
        .get(field)
        .ok_or_else(|| ApiError::schema(format!("missing field {field:?}")))?
        .as_f64()
        .ok_or_else(|| ApiError::schema(format!("{field} must be a number")))?;
    if !x.is_finite() {
        return Err(ApiError::value(format!("{field} must be finite")));
    }
    Ok(x)
}

fn opt_f64(v: &JsonValue, field: &str) -> Result<Option<f64>, ApiError> {
    match v.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(_) => get_f64(v, field).map(Some),
    }
}

fn opt_u64(v: &JsonValue, field: &str) -> Result<Option<u64>, ApiError> {
    match v.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .ok_or_else(|| ApiError::schema(format!("{field} must be a non-negative integer")))
            .map(Some),
    }
}

fn get_array<'a>(v: &'a JsonValue, field: &str) -> Result<&'a [JsonValue], ApiError> {
    match v
        .get(field)
        .ok_or_else(|| ApiError::schema(format!("missing field {field:?}")))?
    {
        JsonValue::Array(items) => Ok(items),
        _ => Err(ApiError::schema(format!("{field} must be an array"))),
    }
}

fn get_str_array(v: &JsonValue, field: &str) -> Result<Vec<String>, ApiError> {
    get_array(v, field)?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| ApiError::schema(format!("{field} must hold strings")))
        })
        .collect()
}

fn get_f64_array(v: &JsonValue, field: &str) -> Result<Vec<f64>, ApiError> {
    get_array(v, field)?
        .iter()
        .map(|item| {
            let x = item
                .as_f64()
                .ok_or_else(|| ApiError::schema(format!("{field} must hold numbers")))?;
            if !x.is_finite() {
                return Err(ApiError::value(format!("{field} must hold finite numbers")));
            }
            Ok(x)
        })
        .collect()
}

fn get_pair(v: &JsonValue, what: &str) -> Result<[f64; 2], ApiError> {
    let JsonValue::Array(items) = v else {
        return Err(ApiError::schema(format!("{what} must be a 2-array")));
    };
    if items.len() != 2 {
        return Err(ApiError::schema(format!("{what} must have exactly 2 numbers")));
    }
    let x = items[0]
        .as_f64()
        .ok_or_else(|| ApiError::schema(format!("{what} must hold numbers")))?;
    let y = items[1]
        .as_f64()
        .ok_or_else(|| ApiError::schema(format!("{what} must hold numbers")))?;
    if !x.is_finite() || !y.is_finite() {
        return Err(ApiError::value(format!("{what} must hold finite numbers")));
    }
    Ok([x, y])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn coplot_request() -> AnalysisRequest {
        AnalysisRequest::new(Operation::Coplot, DatasetSpec::Named("table1".into()))
    }

    #[test]
    fn canonicalization_fills_defaults() {
        let r = coplot_request().canonicalize().unwrap();
        assert_eq!(r.vars, DEFAULT_VARS.map(String::from).to_vec());
        assert_eq!(r.jobs, DEFAULT_JOBS);
        assert_eq!(r.seed, DEFAULT_SEED);
    }

    #[test]
    fn canonicalization_clears_irrelevant_fields() {
        let mut r = AnalysisRequest::new(Operation::Hurst, DatasetSpec::Named("table1".into()));
        r.vars = vec!["Rm".into()];
        r.min_correlation = Some(0.8);
        r.subset_size = 4;
        let c = r.canonicalize().unwrap();
        assert!(c.vars.is_empty());
        assert_eq!(c.min_correlation, None);
        assert_eq!(c.subset_size, DEFAULT_SUBSET_SIZE);
        // ...so a hurst request with stray coplot fields digests the same.
        let plain = AnalysisRequest::new(Operation::Hurst, DatasetSpec::Named("table1".into()));
        assert_eq!(
            r.canonical_digest().unwrap(),
            plain.canonical_digest().unwrap()
        );
    }

    #[test]
    fn digest_ignores_deadline_but_json_keeps_it() {
        let mut with = coplot_request();
        with.deadline_ms = Some(2500);
        let without = coplot_request();
        assert_eq!(
            with.canonical_digest().unwrap(),
            without.canonical_digest().unwrap()
        );
        assert!(with.to_canonical_json().unwrap().contains("deadline_ms"));
        assert!(!without.to_canonical_json().unwrap().contains("deadline_ms"));
    }

    #[test]
    fn format_is_cleared_for_named_and_kept_for_paths() {
        let mut named = coplot_request();
        named.format = Some("gwf".into());
        let canon = named.canonicalize().unwrap();
        assert_eq!(canon.format, None);
        // ...so a named-dataset request with a stray format digests the same.
        assert_eq!(
            named.canonical_digest().unwrap(),
            coplot_request().canonical_digest().unwrap()
        );
        let mut paths = AnalysisRequest::new(
            Operation::Coplot,
            DatasetSpec::Paths(vec!["a.gwf".into(), "b.gwf".into(), "c.gwf".into()]),
        );
        let auto_digest = paths.canonical_digest().unwrap();
        paths.format = Some("gwf".into());
        let canon = paths.canonicalize().unwrap();
        assert_eq!(canon.format.as_deref(), Some("gwf"));
        assert_ne!(paths.canonical_digest().unwrap(), auto_digest);
        assert!(paths.to_canonical_json().unwrap().contains("\"format\":\"gwf\""));
        let back = AnalysisRequest::from_json(&paths.to_canonical_json().unwrap()).unwrap();
        assert_eq!(back.format.as_deref(), Some("gwf"));
    }

    #[test]
    fn unknown_format_is_rejected() {
        let mut r = AnalysisRequest::new(
            Operation::Coplot,
            DatasetSpec::Paths(vec!["a".into()]),
        );
        r.format = Some("parquet".into());
        assert_eq!(r.canonicalize().unwrap_err().kind, ApiErrorKind::Value);
    }

    #[test]
    fn rejects_bad_values() {
        let mut r = coplot_request();
        r.min_correlation = Some(f64::NAN);
        assert_eq!(r.canonicalize().unwrap_err().kind, ApiErrorKind::Value);
        let mut r = coplot_request();
        r.jobs = 0;
        assert_eq!(r.canonicalize().unwrap_err().kind, ApiErrorKind::Value);
        let mut r = coplot_request();
        r.seed = MAX_EXACT_INT + 1;
        assert_eq!(r.canonicalize().unwrap_err().kind, ApiErrorKind::Value);
        let mut r = AnalysisRequest::new(Operation::Subset, DatasetSpec::Named("x".into()));
        r.subset_size = 1;
        assert_eq!(r.canonicalize().unwrap_err().kind, ApiErrorKind::Value);
    }

    #[test]
    fn request_parse_rejects_malformed_shapes() {
        for (body, kind) in [
            ("{", ApiErrorKind::Json),
            ("42", ApiErrorKind::Schema),
            ("{}", ApiErrorKind::Schema),
            (r#"{"op":"coplot"}"#, ApiErrorKind::Schema),
            (r#"{"op":"nope","dataset":{"name":"t"}}"#, ApiErrorKind::Schema),
            (
                r#"{"op":"coplot","dataset":{"name":"t"},"bogus":1}"#,
                ApiErrorKind::Schema,
            ),
            (
                r#"{"op":"coplot","dataset":{"name":"t","paths":[]}}"#,
                ApiErrorKind::Schema,
            ),
            (
                r#"{"op":"coplot","dataset":{"name":"t"},"jobs":-3}"#,
                ApiErrorKind::Schema,
            ),
            (
                r#"{"op":"coplot","dataset":{"name":"t"},"vars":"Rm"}"#,
                ApiErrorKind::Schema,
            ),
        ] {
            let err = AnalysisRequest::from_json(body).unwrap_err();
            assert_eq!(err.kind, kind, "{body}: {err}");
        }
    }

    #[test]
    fn coplot_out_round_trips_through_result() {
        let out = CoplotOut {
            observations: vec!["a".into(), "b".into(), "c".into()],
            coords: vec![[0.5, -0.25], [-1.0, 0.125], [0.5, 0.125]],
            arrows: vec![ArrowOut {
                name: "v".into(),
                direction: [0.6, 0.8],
                correlation: 0.93,
            }],
            alienation: 0.07,
            stress: 0.04,
            dissimilarities: vec![1.0, 2.5, 0.75],
            removed: vec!["w".into()],
        };
        let back = CoplotOut::from_result(&out.to_result().unwrap());
        assert_eq!(out, back);
    }

    #[test]
    fn coplot_out_rejects_inconsistent_shapes() {
        let mut out = CoplotOut {
            observations: vec!["a".into(), "b".into(), "c".into()],
            coords: vec![[0.0, 0.0]; 3],
            arrows: vec![],
            alienation: 0.0,
            stress: 0.0,
            dissimilarities: vec![0.0; 3],
            removed: vec![],
        };
        out.coords.pop();
        assert!(out.to_result().is_err());
        out.coords.push([0.0, 0.0]);
        out.dissimilarities.pop();
        assert!(out.to_result().is_err());
    }

    /// A non-empty token: arbitrary text behind a letter, so it survives
    /// the canonicalizer's empty-string checks while still fuzzing
    /// escaping.
    fn arb_token() -> impl Strategy<Value = String> {
        ".*".prop_map(|s| format!("v{s}"))
    }

    fn arb_opt<S: Strategy + 'static>(
        inner: S,
    ) -> impl Strategy<Value = Option<S::Value>>
    where
        S::Value: Clone + std::fmt::Debug + 'static,
    {
        prop_oneof![
            Just(None),
            inner.prop_map(Some).boxed(),
        ]
    }

    fn arb_request() -> impl Strategy<Value = AnalysisRequest> {
        let fields = (
            prop_oneof![
                Just(Operation::Coplot),
                Just(Operation::Hurst),
                Just(Operation::Subset)
            ],
            prop_oneof![
                arb_token().prop_map(DatasetSpec::Named).boxed(),
                proptest::collection::vec(arb_token(), 1..4)
                    .prop_map(DatasetSpec::Paths)
                    .boxed(),
            ],
            1u64..=100_000,
            0u64..MAX_EXACT_INT,
            proptest::collection::vec(arb_token(), 0..5),
            prop_oneof![
                Just(None),
                Just(Some("swf".to_string())),
                Just(Some("gwf".to_string())),
                Just(Some("weblog".to_string())),
            ],
            arb_opt(0.0f64..1.0),
            2u64..=8,
        );
        let tail = (0.0f64..2.0, 1u64..=50, arb_opt(1u64..=600_000));
        (fields, tail).prop_map(
            |((op, dataset, jobs, seed, vars, format, mc, k), (max_a, top, deadline))| {
                AnalysisRequest {
                    op,
                    dataset,
                    jobs,
                    seed,
                    vars,
                    format,
                    min_correlation: mc,
                    subset_size: k,
                    max_alienation: max_a,
                    top,
                    deadline_ms: deadline,
                }
            },
        )
    }

    proptest! {
        /// Canonicalization is idempotent.
        #[test]
        fn canonicalize_is_idempotent(r in arb_request()) {
            let once = r.canonicalize().unwrap();
            let twice = once.canonicalize().unwrap();
            prop_assert_eq!(&once, &twice);
            prop_assert_eq!(
                once.canonical_digest().unwrap(),
                twice.canonical_digest().unwrap()
            );
        }

        /// JSON key order does not change parsing or the digest: feed the
        /// canonical fields back in reversed key order and compare.
        #[test]
        fn digest_is_key_order_insensitive(r in arb_request()) {
            let canon = r.canonicalize().unwrap();
            let forward = canon.to_canonical_json().unwrap();
            // Re-emit the same object with keys reversed, by parsing into
            // the BTreeMap (order-insensitive) and serializing each field
            // back by hand in reverse canonical order.
            let JsonValue::Object(map) = parse_json(&forward).unwrap() else {
                panic!("canonical JSON is an object");
            };
            let mut rev = String::from("{");
            let keys: Vec<&String> = map.keys().collect();
            for (i, key) in keys.iter().rev().enumerate() {
                if i > 0 { rev.push(','); }
                rev.push_str(&format!("\"{}\":{}", key, raw_json(&map[*key])));
            }
            rev.push('}');
            let reparsed = AnalysisRequest::from_json(&rev).unwrap();
            prop_assert_eq!(
                reparsed.canonical_digest().unwrap(),
                canon.canonical_digest().unwrap()
            );
        }

        /// Requests round-trip: serialize, parse, canonicalize-compare.
        #[test]
        fn request_round_trips(r in arb_request()) {
            let canon = r.canonicalize().unwrap();
            let parsed = AnalysisRequest::from_json(&canon.to_canonical_json().unwrap()).unwrap();
            prop_assert_eq!(parsed.canonicalize().unwrap(), canon);
        }

        /// The request parser never panics.
        #[test]
        fn request_parser_never_panics(s in ".*") {
            let _ = AnalysisRequest::from_json(&s);
        }

        /// Responses round-trip exactly: serialize, parse, compare. Exact
        /// f64 equality is intentional — Display emits the shortest
        /// round-trip decimal and the parser reads it back bit-identically.
        #[test]
        fn response_round_trips(r in arb_response()) {
            let parsed = AnalysisResponse::from_json(&r.to_json()).unwrap();
            prop_assert_eq!(parsed, r);
        }

        /// The response parser never panics.
        #[test]
        fn response_parser_never_panics(s in ".*") {
            let _ = AnalysisResponse::from_json(&s);
        }

        /// Envelope round-trip across both versions, plus the digest
        /// compatibility contract: v1 bytes are the flat pre-envelope
        /// encoding, and the canonical digest is identical no matter
        /// which version carried the request.
        #[test]
        fn envelope_round_trips_with_stable_digests(r in arb_request()) {
            let canon = r.canonicalize().unwrap();
            let v1 = Envelope::v1(canon.clone());
            let v2 = Envelope::v2(canon.clone());
            prop_assert_eq!(v1.to_json(), canon.to_json());
            let p1 = Envelope::from_json(&v1.to_json()).unwrap();
            prop_assert_eq!(p1.api_version, 1);
            let p2 = Envelope::from_json(&v2.to_json()).unwrap();
            prop_assert_eq!(p2.api_version, 2);
            let EnvelopePayload::Analysis(r1) = p1.payload else {
                panic!("v1 payload is analysis");
            };
            let EnvelopePayload::Analysis(r2) = p2.payload else {
                panic!("v2 payload is analysis");
            };
            prop_assert_eq!(r1.canonicalize().unwrap(), canon.clone());
            prop_assert_eq!(r2.canonicalize().unwrap(), canon.clone());
            prop_assert_eq!(
                v2.canonical_digest().unwrap(),
                canon.canonical_digest().unwrap()
            );
        }

        /// Unknown versions are typed `bad-version` errors, not panics
        /// or schema noise.
        #[test]
        fn unsupported_versions_are_typed_errors(r in arb_request(), ver in 3u64..1_000_000) {
            let canon = r.canonicalize().unwrap();
            let mut env = Envelope::v2(canon);
            env.api_version = ver;
            let err = Envelope::from_json(&env.to_json()).unwrap_err();
            prop_assert_eq!(err.kind, ApiErrorKind::Version);
        }

        /// The envelope parser never panics.
        #[test]
        fn envelope_parser_never_panics(s in ".*") {
            let _ = Envelope::from_json(&s);
        }

        /// Shard requests round-trip through both their own JSON and the
        /// v2 envelope, with matching digests.
        #[test]
        fn shard_request_round_trips(s in arb_shard_request()) {
            let parsed = ShardRequest::from_json(&s.to_json()).unwrap();
            prop_assert_eq!(parsed.canonicalize().unwrap(), s.canonicalize().unwrap());
            let env = Envelope::shard(s.clone());
            let back = Envelope::from_json(&env.to_json()).unwrap();
            prop_assert_eq!(back.api_version, 2);
            let EnvelopePayload::Shard(inner) = back.payload else {
                panic!("shard payload survives the envelope");
            };
            prop_assert_eq!(inner.canonicalize().unwrap(), s.canonicalize().unwrap());
            prop_assert_eq!(
                env.canonical_digest().unwrap(),
                s.canonical_digest().unwrap()
            );
        }

        /// Shard responses round-trip exactly (same f64 contract as
        /// `response_round_trips`).
        #[test]
        fn shard_response_round_trips(r in arb_shard_response()) {
            let parsed = ShardResponse::from_json(&r.to_json()).unwrap();
            prop_assert_eq!(parsed, r);
        }

        /// The shard parsers never panic.
        #[test]
        fn shard_parsers_never_panic(s in ".*") {
            let _ = ShardRequest::from_json(&s);
            let _ = ShardResponse::from_json(&s);
        }
    }

    fn arb_shard_request() -> impl Strategy<Value = ShardRequest> {
        (arb_request(), (0u64..50, 1u64..50), proptest::bool::ANY).prop_map(
            |(r, (lo, d), whole)| {
                let base = r.canonicalize().unwrap();
                let hi = lo + d;
                let part = if whole {
                    ShardPart::Whole
                } else {
                    match base.op {
                        Operation::Coplot if base.min_correlation.is_none() => {
                            ShardPart::Restarts { lo, hi }
                        }
                        Operation::Coplot => ShardPart::Whole,
                        Operation::Hurst => ShardPart::Rows { lo, hi },
                        Operation::Subset => ShardPart::Combos { lo, hi },
                    }
                };
                ShardRequest { base, part }
            },
        )
    }

    fn arb_shard_response() -> impl Strategy<Value = ShardResponse> {
        prop_oneof![
            arb_coplot_out().prop_map(ShardResponse::Coplot).boxed(),
            (
                proptest::collection::vec(arb_name(), 0..4),
                proptest::collection::vec(
                    proptest::collection::vec(arb_opt(arb_finite()), 0..4),
                    0..4
                ),
            )
                .prop_map(|(workloads, rows)| ShardResponse::Hurst { workloads, rows })
                .boxed(),
            proptest::collection::vec(
                (
                    proptest::collection::vec(arb_name(), 0..4),
                    arb_finite(),
                    arb_finite(),
                    arb_finite()
                ),
                0..4
            )
            .prop_map(|entries| ShardResponse::Subset {
                entries: entries
                    .into_iter()
                    .map(|(variables, alienation, mean_correlation, rmsd)| SubsetEntry {
                        variables,
                        alienation,
                        mean_correlation,
                        map_conservation_rmsd: rmsd,
                    })
                    .collect(),
            })
            .boxed(),
            arb_response().prop_map(ShardResponse::Whole).boxed(),
        ]
    }

    #[test]
    fn envelope_v2_body_inherits_op() {
        let text = r#"{"api_version":2,"op":"coplot","body":{"dataset":{"name":"table1"}}}"#;
        let env = Envelope::from_json(text).unwrap();
        assert_eq!(env.api_version, 2);
        let EnvelopePayload::Analysis(r) = env.payload else {
            panic!("analysis payload");
        };
        assert_eq!(r.op, Operation::Coplot);
        assert_eq!(
            r.canonical_digest().unwrap(),
            coplot_request().canonical_digest().unwrap()
        );
    }

    #[test]
    fn envelope_rejects_malformed_shapes() {
        for (body, kind) in [
            (
                r#"{"api_version":3,"op":"coplot","body":{}}"#,
                ApiErrorKind::Version,
            ),
            (
                r#"{"api_version":"two","op":"coplot","body":{}}"#,
                ApiErrorKind::Version,
            ),
            (
                r#"{"api_version":1.5,"op":"coplot","body":{}}"#,
                ApiErrorKind::Version,
            ),
            (r#"{"api_version":2,"op":"coplot"}"#, ApiErrorKind::Schema),
            (
                r#"{"api_version":2,"op":"nope","body":{}}"#,
                ApiErrorKind::Schema,
            ),
            (
                r#"{"api_version":2,"op":"coplot","body":{"op":"hurst","dataset":{"name":"t"}}}"#,
                ApiErrorKind::Schema,
            ),
            (
                r#"{"api_version":2,"op":"coplot","body":{"dataset":{"name":"t"}},"extra":1}"#,
                ApiErrorKind::Schema,
            ),
        ] {
            let err = Envelope::from_json(body).unwrap_err();
            assert_eq!(err.kind, kind, "{body}: {err}");
        }
        // `"api_version":1` on a flat request is tolerated and parses as v1.
        let env = Envelope::from_json(
            r#"{"api_version":1,"op":"coplot","dataset":{"name":"table1"}}"#,
        )
        .unwrap();
        assert_eq!(env.api_version, 1);
    }

    #[test]
    fn shard_part_op_pairing_is_validated() {
        let hurst = AnalysisRequest::new(Operation::Hurst, DatasetSpec::Named("models".into()));
        let bad = ShardRequest {
            base: hurst.clone(),
            part: ShardPart::Restarts { lo: 0, hi: 2 },
        };
        assert_eq!(bad.canonicalize().unwrap_err().kind, ApiErrorKind::Value);

        let mut eliminating = coplot_request();
        eliminating.min_correlation = Some(0.8);
        let bad = ShardRequest {
            base: eliminating,
            part: ShardPart::Restarts { lo: 0, hi: 2 },
        };
        assert_eq!(bad.canonicalize().unwrap_err().kind, ApiErrorKind::Value);

        let empty = ShardRequest {
            base: hurst,
            part: ShardPart::Rows { lo: 3, hi: 3 },
        };
        assert_eq!(empty.canonicalize().unwrap_err().kind, ApiErrorKind::Value);
    }

    #[test]
    fn error_body_round_trips() {
        let plain = ErrorBody::new("bad-json", "oops \"quoted\"");
        assert_eq!(ErrorBody::from_json(&plain.to_json()).unwrap(), plain);
        let retry = ErrorBody::new("overloaded", "queue full").with_retry_after_ms(1000);
        let json = retry.to_json();
        assert!(json.contains("\"retry_after_ms\":1000"), "{json}");
        assert_eq!(ErrorBody::from_json(&json).unwrap(), retry);
    }

    fn arb_finite() -> impl Strategy<Value = f64> {
        // Mixes wide-range values with awkward exact decimals.
        prop_oneof![
            (-1.0e9f64..1.0e9).boxed(),
            Just(0.0).boxed(),
            Just(1.0 / 3.0).boxed(),
            Just(f64::MIN_POSITIVE).boxed(),
        ]
    }

    fn arb_name() -> impl Strategy<Value = String> {
        ".*".prop_map(|s| s)
    }

    fn arb_pair() -> impl Strategy<Value = [f64; 2]> {
        (arb_finite(), arb_finite()).prop_map(|(x, y)| [x, y])
    }

    fn arb_coplot_out() -> impl Strategy<Value = CoplotOut> {
        (1usize..5).prop_flat_map(|n| {
            (
                proptest::collection::vec(arb_name(), n),
                proptest::collection::vec(arb_pair(), n),
                proptest::collection::vec((arb_name(), arb_pair(), arb_finite()), 0..4),
                arb_finite(),
                arb_finite(),
                proptest::collection::vec(arb_finite(), n * (n - 1) / 2),
                proptest::collection::vec(arb_name(), 0..3),
            )
                .prop_map(
                    |(observations, coords, arrows, alienation, stress, diss, removed)| {
                        CoplotOut {
                            observations,
                            coords,
                            arrows: arrows
                                .into_iter()
                                .map(|(name, direction, correlation)| ArrowOut {
                                    name,
                                    direction,
                                    correlation,
                                })
                                .collect(),
                            alienation,
                            stress,
                            dissimilarities: diss,
                            removed,
                        }
                    },
                )
        })
    }

    fn arb_response() -> impl Strategy<Value = AnalysisResponse> {
        prop_oneof![
            arb_coplot_out().prop_map(AnalysisResponse::Coplot).boxed(),
            (
                proptest::collection::vec(arb_name(), 0..4),
                proptest::collection::vec(arb_name(), 0..4),
                proptest::collection::vec(
                    proptest::collection::vec(arb_opt(arb_finite()), 0..4),
                    0..4
                ),
            )
                .prop_map(|(workloads, columns, rows)| {
                    AnalysisResponse::Hurst(HurstOut {
                        workloads,
                        columns,
                        rows,
                    })
                })
                .boxed(),
            proptest::collection::vec(
                (
                    proptest::collection::vec(arb_name(), 0..4),
                    arb_finite(),
                    arb_finite(),
                    arb_finite()
                ),
                0..4
            )
            .prop_map(|entries| {
                AnalysisResponse::Subset(SubsetOut {
                    results: entries
                        .into_iter()
                        .map(
                            |(variables, alienation, mean_correlation, rmsd)| SubsetEntry {
                                variables,
                                alienation,
                                mean_correlation,
                                map_conservation_rmsd: rmsd,
                            },
                        )
                        .collect(),
                })
            })
            .boxed(),
        ]
    }

    /// Serialize a parsed JsonValue back to a JSON fragment (test helper
    /// for the key-order property; numbers reuse f64 Display which is how
    /// they were emitted).
    fn raw_json(v: &JsonValue) -> String {
        match v {
            JsonValue::Null => "null".into(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Number(n) => format!("{n}"),
            JsonValue::String(s) => format!("\"{}\"", escape_str(s)),
            JsonValue::Array(items) => {
                let inner: Vec<String> = items.iter().map(raw_json).collect();
                format!("[{}]", inner.join(","))
            }
            JsonValue::Object(map) => {
                let inner: Vec<String> = map
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape_str(k), raw_json(v)))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}
