//! Guttman's coefficient of alienation (Eqs. 3-4 of the paper).
//!
//! The MDS stage demands that map distances preserve the *order* of the
//! dissimilarities: `S_ik < S_lm` iff `d_ik < d_lm`. Guttman's statistics
//! quantify how well a configuration achieves this. Over all pairs of pairs:
//!
//! ```text
//! mu = sum (S_ik - S_lm)(d_ik - d_lm)  /  sum |S_ik - S_lm| |d_ik - d_lm|
//! theta = sqrt(1 - mu^2)
//! ```
//!
//! `mu = 1` (theta = 0) means perfect weak monotonicity; the paper treats
//! `theta < 0.15` as a good fit. Both statistics are computed exactly: with
//! `P = n(n-1)/2` pairs the double sum has `P^2` terms, trivially cheap for
//! the paper's `n <= 20`.

/// The mu statistic of Eq. 3 for matched slices of dissimilarities `s` and
/// map distances `d` (same pair order). Returns 1.0 for degenerate inputs
/// (fewer than two pairs or all-equal values), matching the convention that
/// nothing contradicts monotonicity there.
///
/// # Panics
/// Panics on a length mismatch.
pub fn mu_statistic(s: &[f64], d: &[f64]) -> f64 {
    assert_eq!(s.len(), d.len(), "pair count mismatch");
    let p = s.len();
    if p < 2 {
        return 1.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for a in 0..p {
        for b in (a + 1)..p {
            let ds = s[a] - s[b];
            let dd = d[a] - d[b];
            num += ds * dd;
            den += ds.abs() * dd.abs();
        }
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// The coefficient of alienation `theta = sqrt(1 - mu^2)` of Eq. 4.
///
/// # Panics
/// Panics on a length mismatch.
pub fn coefficient_of_alienation(s: &[f64], d: &[f64]) -> f64 {
    let mu = mu_statistic(s, d).clamp(-1.0, 1.0);
    (1.0 - mu * mu).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_gives_zero_theta() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let d = [10.0, 20.0, 30.0, 40.0];
        assert!((mu_statistic(&s, &d) - 1.0).abs() < 1e-12);
        assert!(coefficient_of_alienation(&s, &d) < 1e-7);
    }

    #[test]
    fn monotone_nonlinear_still_perfect() {
        // Weak monotonicity only needs order agreement, not linearity.
        let s = [1.0, 2.0, 3.0, 4.0];
        let d = [1.0, 8.0, 27.0, 64.0];
        assert!((mu_statistic(&s, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_order_gives_minus_one() {
        let s = [1.0, 2.0, 3.0];
        let d = [3.0, 2.0, 1.0];
        assert!((mu_statistic(&s, &d) + 1.0).abs() < 1e-12);
        // theta = sqrt(1-1) = 0 for perfectly reversed too (|mu| = 1),
        // which is why MDS maximizes mu, not theta alone.
        assert!(coefficient_of_alienation(&s, &d) < 1e-7);
    }

    #[test]
    fn one_inversion_penalized() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let d = [10.0, 30.0, 20.0, 40.0]; // one swap
        let mu = mu_statistic(&s, &d);
        assert!(mu < 1.0 && mu > 0.0);
        let theta = coefficient_of_alienation(&s, &d);
        assert!(theta > 0.0 && theta < 1.0);
    }

    #[test]
    fn ties_do_not_contradict() {
        // Equal dissimilarities mapped to different distances contribute
        // zero to both sums (weak monotonicity).
        let s = [1.0, 1.0, 2.0];
        let d = [5.0, 9.0, 12.0];
        assert!((mu_statistic(&s, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mu_statistic(&[], &[]), 1.0);
        assert_eq!(mu_statistic(&[1.0], &[2.0]), 1.0);
        assert_eq!(mu_statistic(&[1.0, 1.0], &[2.0, 2.0]), 1.0);
    }

    #[test]
    fn random_orders_give_middling_theta() {
        // A scrambled assignment should score clearly worse than monotone.
        let s: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let d: Vec<f64> = (0..20).map(|i| ((i * 7) % 20) as f64).collect();
        let theta = coefficient_of_alienation(&s, &d);
        assert!(theta > 0.5, "theta = {theta}");
    }

    #[test]
    fn theta_bounded() {
        let s = [1.0, 5.0, 2.0, 8.0, 3.0];
        let d = [2.0, 1.0, 9.0, 4.0, 4.5];
        let theta = coefficient_of_alienation(&s, &d);
        assert!((0.0..=1.0).contains(&theta));
    }
}
