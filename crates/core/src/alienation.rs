//! Guttman's coefficient of alienation (Eqs. 3-4 of the paper).
//!
//! The MDS stage demands that map distances preserve the *order* of the
//! dissimilarities: `S_ik < S_lm` iff `d_ik < d_lm`. Guttman's statistics
//! quantify how well a configuration achieves this. Over all pairs of pairs:
//!
//! ```text
//! mu = sum (S_ik - S_lm)(d_ik - d_lm)  /  sum |S_ik - S_lm| |d_ik - d_lm|
//! theta = sqrt(1 - mu^2)
//! ```
//!
//! `mu = 1` (theta = 0) means perfect weak monotonicity; the paper treats
//! `theta < 0.15` as a good fit.
//!
//! # Fast kernel
//!
//! The textbook form is a double sum over all pairs of pairs — `P^2` terms
//! for `P = n(n-1)/2` pairs, i.e. `O(n^4)` in observations. That sat on the
//! hot path of every MDS restart, every elimination round, every candidate
//! in a `C(p,k)` subset search, and every sealed streaming window. The
//! public [`mu_statistic`] now dispatches on `P`:
//!
//! * Below [`SWEEP_MIN_PAIRS`] the textbook double sum is kept but run
//!   through [`QUAD_LANES`] independent accumulator lanes over contiguous
//!   tails (`mu_quadratic`), vectorized explicitly (AVX-512/AVX2 with a
//!   scalar-lane fallback, all bit-identical). Each lane owns a fixed
//!   subset of terms, so the result is deterministic, and since `|t|` is
//!   accumulated through the same lanes as `t`, perfectly concordant
//!   (discordant) inputs give `mu` exactly `1.0` (`-1.0`) bit for bit,
//!   like the scalar loop.
//! * From [`SWEEP_MIN_PAIRS`] up, a Kendall-style `O(P log P)` sweep
//!   (`mu_sweep`): sort the pairs by `(s, d)` — as order-preserving
//!   `u128` bit keys, so the sort is a branch-cheap integer sort — then
//!   for each pair `b` in ascending-`s` order split the already-seen
//!   pairs `a` (those with `s_a < s_b` strictly; equal-`s` groups are
//!   batched so ties contribute exactly zero) by `d`-rank using two
//!   Fenwick trees holding `(count, sum s, sum d, sum s*d)`:
//!
//!   ```text
//!   C  = sum over seen a with d_a < d_b of (s_b - s_a)(d_b - d_a)   # concordant
//!   D' = sum over seen a with d_a > d_b of (s_b - s_a)(d_a - d_b)   # discordant
//!   ```
//!
//!   Both expand into the four Fenwick partial sums. Every concordant and
//!   discordant product enters with its *true* sign, so
//!
//!   ```text
//!   num += C - D'      den += C + D'
//!   ```
//!
//!   reproduces Eq. 3 — and for perfectly concordant (or discordant)
//!   inputs `num` and `den` accumulate the *identical* float sequence, so
//!   `mu` is exactly `1.0` (or `-1.0`) bit for bit as well.
//!
//! The naive version is retained as the `#[cfg(test)]` oracle
//! (`mu_statistic_naive`) with a proptest equivalence bound of 1e-9
//! against both paths.

/// Fenwick (binary indexed) tree over compressed `d`-ranks. Each inserted
/// pair contributes `(1, s, d, s*d)`; prefix queries return the four sums
/// over all inserted pairs with rank below a bound. Accumulation order is a
/// pure function of insertion order, so results are deterministic.
struct Fenwick {
    tree: Vec<[f64; 4]>,
}

impl Fenwick {
    fn new(ranks: usize) -> Fenwick {
        Fenwick {
            tree: vec![[0.0; 4]; ranks + 1],
        }
    }

    fn add(&mut self, rank: usize, s: f64, d: f64) {
        let mut i = rank + 1;
        while i < self.tree.len() {
            let cell = &mut self.tree[i];
            cell[0] += 1.0;
            cell[1] += s;
            cell[2] += d;
            cell[3] += s * d;
            i += i & i.wrapping_neg();
        }
    }

    /// Sums over inserted pairs with rank in `0..below`. An empty range is
    /// exactly `[0.0; 4]` — no subtraction residue.
    fn prefix(&self, below: usize) -> [f64; 4] {
        let mut acc = [0.0; 4];
        let mut i = below;
        while i > 0 {
            let cell = &self.tree[i];
            acc[0] += cell[0];
            acc[1] += cell[1];
            acc[2] += cell[2];
            acc[3] += cell[3];
            i -= i & i.wrapping_neg();
        }
        acc
    }
}

/// Pair counts below this run the lane-blocked quadratic kernel; the sweep's
/// sort + Fenwick constant amortizes past roughly this many pairs. Measured
/// break-even on the dev machine is P around 150-200 (`n` around 18-20
/// observations) — see the `theta_kernel` bench and the `theta_profile`
/// example used to place it.
const SWEEP_MIN_PAIRS: usize = 160;

/// Map `f64` bits to `u64` such that unsigned integer order equals
/// `f64::total_cmp` order (flip the sign bit for positives, all bits for
/// negatives). Bijective, so the value is recoverable via [`dec_key`].
#[inline]
fn enc_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1 << 63)
    }
}

#[inline]
fn dec_key(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k ^ (1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

/// The mu statistic of Eq. 3 for matched slices of dissimilarities `s` and
/// map distances `d` (same pair order). Returns 1.0 for degenerate inputs
/// (fewer than two pairs or all-equal values), matching the convention that
/// nothing contradicts monotonicity there.
///
/// Dispatches between a lane-blocked quadratic kernel (small `P`) and an
/// `O(P log P)` sweep; see the module docs for both constructions and their
/// exactness guarantees at `mu = ±1`.
///
/// # Panics
/// Panics on a length mismatch.
pub fn mu_statistic(s: &[f64], d: &[f64]) -> f64 {
    assert_eq!(s.len(), d.len(), "pair count mismatch");
    let p = s.len();
    if p < 2 {
        return 1.0;
    }
    wl_obs::counter!("alienation.fast_mu", 1u64);
    if p < SWEEP_MIN_PAIRS {
        mu_quadratic(s, d)
    } else {
        mu_sweep(s, d)
    }
}

/// Accumulator lanes for the quadratic kernel. 16 gives the vectorizer
/// four 256-bit (or two 512-bit) independent accumulation chains, enough
/// to hide floating-point add latency. The lane count is FIXED — never
/// CPU-dependent — so results are bit-identical on every machine.
const QUAD_LANES: usize = 16;

/// The textbook double sum, restructured into [`QUAD_LANES`] independent
/// accumulator lanes over the contiguous tail `a+1..` so the compiler can
/// vectorize it. Lane `j` always owns tail offsets `j mod QUAD_LANES` (the
/// remainder loop keeps the same assignment), so the accumulation order is
/// a pure function of the input length — deterministic, and bit-identical
/// from run to run.
#[inline(always)]
fn mu_quadratic_lanes(s: &[f64], d: &[f64]) -> f64 {
    let p = s.len();
    let mut num = [0.0f64; QUAD_LANES];
    let mut den = [0.0f64; QUAD_LANES];
    for a in 0..p {
        let sa = s[a];
        let da = d[a];
        let ts = &s[a + 1..];
        let td = &d[a + 1..];
        let mut k = 0;
        while k + QUAD_LANES <= ts.len() {
            for j in 0..QUAD_LANES {
                let t = (sa - ts[k + j]) * (da - td[k + j]);
                num[j] += t;
                den[j] += t.abs();
            }
            k += QUAD_LANES;
        }
        for j in 0..ts.len() - k {
            let t = (sa - ts[k + j]) * (da - td[k + j]);
            num[j] += t;
            den[j] += t.abs();
        }
    }
    // Fixed pairwise reduction tree; for all-concordant input every lane
    // has num[j] == den[j] bitwise (t == |t|), so mu is exactly 1.0 (and
    // by the symmetry of IEEE negation, exactly -1.0 for all-discordant).
    let mut rn = num;
    let mut rd = den;
    let mut width = QUAD_LANES / 2;
    while width >= 1 {
        for j in 0..width {
            rn[j] += rn[j + width];
            rd[j] += rd[j + width];
        }
        width /= 2;
    }
    if rd[0] == 0.0 {
        1.0
    } else {
        rn[0] / rd[0]
    }
}

/// AVX-512 version of [`mu_quadratic_lanes`]: two 8-wide accumulator
/// vectors per sum hold the same 16 lanes with the same lane-to-term
/// mapping, the tail is handled with zero-masked loads and a zero-masked
/// multiply (adding an exact `+0.0` to the untouched lanes, which is a
/// bitwise no-op on these accumulators), and the final reduction performs
/// the identical pairwise tree — so the result matches the scalar kernel
/// bit for bit on every input.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mu_quadratic_avx512(s: &[f64], d: &[f64]) -> f64 {
    use core::arch::x86_64::*;
    let p = s.len();
    let abs_mask = _mm512_castsi512_pd(_mm512_set1_epi64(i64::MAX));
    let mut num = [_mm512_setzero_pd(); 2];
    let mut den = [_mm512_setzero_pd(); 2];
    for a in 0..p {
        let sa = _mm512_set1_pd(s[a]);
        let da = _mm512_set1_pd(d[a]);
        let ts = &s[a + 1..];
        let td = &d[a + 1..];
        let n = ts.len();
        let mut k = 0usize;
        while k + QUAD_LANES <= n {
            for v in 0..2 {
                let xs = _mm512_loadu_pd(ts.as_ptr().add(k + 8 * v));
                let xd = _mm512_loadu_pd(td.as_ptr().add(k + 8 * v));
                let t = _mm512_mul_pd(_mm512_sub_pd(sa, xs), _mm512_sub_pd(da, xd));
                num[v] = _mm512_add_pd(num[v], t);
                den[v] = _mm512_add_pd(den[v], _mm512_and_pd(t, abs_mask));
            }
            k += QUAD_LANES;
        }
        let rem = n - k;
        for v in 0..2 {
            let lanes = rem.saturating_sub(8 * v).min(8);
            if lanes == 0 {
                break;
            }
            let m = ((1u16 << lanes) - 1) as __mmask8;
            let xs = _mm512_maskz_loadu_pd(m, ts.as_ptr().add(k + 8 * v));
            let xd = _mm512_maskz_loadu_pd(m, td.as_ptr().add(k + 8 * v));
            let t = _mm512_maskz_mul_pd(m, _mm512_sub_pd(sa, xs), _mm512_sub_pd(da, xd));
            num[v] = _mm512_add_pd(num[v], t);
            den[v] = _mm512_add_pd(den[v], _mm512_and_pd(t, abs_mask));
        }
    }
    // Pairwise tree in the exact order of the scalar reduction:
    // width 8 (acc0 + acc1), 4 (low half + high half), 2, then 1.
    let n8 = _mm512_add_pd(num[0], num[1]);
    let d8 = _mm512_add_pd(den[0], den[1]);
    let n4 = _mm256_add_pd(_mm512_castpd512_pd256(n8), _mm512_extractf64x4_pd(n8, 1));
    let d4 = _mm256_add_pd(_mm512_castpd512_pd256(d8), _mm512_extractf64x4_pd(d8, 1));
    let n2 = _mm_add_pd(_mm256_castpd256_pd128(n4), _mm256_extractf128_pd(n4, 1));
    let d2 = _mm_add_pd(_mm256_castpd256_pd128(d4), _mm256_extractf128_pd(d4, 1));
    let num = _mm_cvtsd_f64(n2) + _mm_cvtsd_f64(_mm_unpackhi_pd(n2, n2));
    let den = _mm_cvtsd_f64(d2) + _mm_cvtsd_f64(_mm_unpackhi_pd(d2, d2));
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Per-lane load/zero masks for the AVX2 tail: entry `r` activates the
/// first `r` lanes (all-ones doubles double as both the maskload control,
/// which keys on the sign bit, and the product AND mask).
#[cfg(target_arch = "x86_64")]
const AVX2_TAIL_MASKS: [[i64; 4]; 5] = [
    [0, 0, 0, 0],
    [-1, 0, 0, 0],
    [-1, -1, 0, 0],
    [-1, -1, -1, 0],
    [-1, -1, -1, -1],
];

/// AVX2 version of [`mu_quadratic_lanes`]: four 4-wide accumulator vectors
/// per sum, same lane mapping, masked-load tail with the product ANDed to
/// an exact `+0.0` in inactive lanes, identical pairwise reduction — bit
/// for bit the scalar result.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mu_quadratic_avx2(s: &[f64], d: &[f64]) -> f64 {
    use core::arch::x86_64::*;
    let p = s.len();
    let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(i64::MAX));
    let mut num = [_mm256_setzero_pd(); 4];
    let mut den = [_mm256_setzero_pd(); 4];
    for a in 0..p {
        let sa = _mm256_set1_pd(s[a]);
        let da = _mm256_set1_pd(d[a]);
        let ts = &s[a + 1..];
        let td = &d[a + 1..];
        let n = ts.len();
        let mut k = 0usize;
        while k + QUAD_LANES <= n {
            for v in 0..4 {
                let xs = _mm256_loadu_pd(ts.as_ptr().add(k + 4 * v));
                let xd = _mm256_loadu_pd(td.as_ptr().add(k + 4 * v));
                let t = _mm256_mul_pd(_mm256_sub_pd(sa, xs), _mm256_sub_pd(da, xd));
                num[v] = _mm256_add_pd(num[v], t);
                den[v] = _mm256_add_pd(den[v], _mm256_and_pd(t, abs_mask));
            }
            k += QUAD_LANES;
        }
        let rem = n - k;
        for v in 0..4 {
            let lanes = rem.saturating_sub(4 * v).min(4);
            if lanes == 0 {
                break;
            }
            let mask_i = _mm256_loadu_si256(AVX2_TAIL_MASKS[lanes].as_ptr().cast());
            let lane_mask = _mm256_castsi256_pd(mask_i);
            let xs = _mm256_maskload_pd(ts.as_ptr().add(k + 4 * v), mask_i);
            let xd = _mm256_maskload_pd(td.as_ptr().add(k + 4 * v), mask_i);
            let t = _mm256_and_pd(
                _mm256_mul_pd(_mm256_sub_pd(sa, xs), _mm256_sub_pd(da, xd)),
                lane_mask,
            );
            num[v] = _mm256_add_pd(num[v], t);
            den[v] = _mm256_add_pd(den[v], _mm256_and_pd(t, abs_mask));
        }
    }
    // Same pairwise tree: width 8 pairs acc v with acc v+2, width 4 merges
    // the two survivors, then halves within the vector.
    let n4a = _mm256_add_pd(num[0], num[2]);
    let n4b = _mm256_add_pd(num[1], num[3]);
    let d4a = _mm256_add_pd(den[0], den[2]);
    let d4b = _mm256_add_pd(den[1], den[3]);
    let n4 = _mm256_add_pd(n4a, n4b);
    let d4 = _mm256_add_pd(d4a, d4b);
    let n2 = _mm_add_pd(_mm256_castpd256_pd128(n4), _mm256_extractf128_pd(n4, 1));
    let d2 = _mm_add_pd(_mm256_castpd256_pd128(d4), _mm256_extractf128_pd(d4, 1));
    let num = _mm_cvtsd_f64(n2) + _mm_cvtsd_f64(_mm_unpackhi_pd(n2, n2));
    let den = _mm_cvtsd_f64(d2) + _mm_cvtsd_f64(_mm_unpackhi_pd(d2, d2));
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Quadratic-kernel entry with CPU-feature dispatch. Exposed (doc-hidden)
/// so the `theta_kernel` bench can pit the kernels against each other; use
/// [`mu_statistic`] everywhere else.
#[doc(hidden)]
pub fn mu_quadratic(s: &[f64], d: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: guarded by runtime detection of the enabled feature.
            return unsafe { mu_quadratic_avx512(s, d) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by runtime detection of the enabled feature.
            return unsafe { mu_quadratic_avx2(s, d) };
        }
    }
    mu_quadratic_lanes(s, d)
}

/// The `O(P log P)` Kendall-style sweep over `(s, d)` sorted as `u128` bit
/// keys. See the module docs for the per-item concordant/discordant split.
/// Doc-hidden for the `theta_kernel` bench; use [`mu_statistic`].
#[doc(hidden)]
pub fn mu_sweep(s: &[f64], d: &[f64]) -> f64 {
    let p = s.len();

    // One integer sort gives the sweep order: ascending s, ties broken by
    // ascending d. Identical (s, d) pairs are interchangeable, so no index
    // tiebreak is needed for determinism.
    let mut keys: Vec<u128> = s
        .iter()
        .zip(d)
        .map(|(&sv, &dv)| ((enc_key(sv) as u128) << 64) | enc_key(dv) as u128)
        .collect();
    keys.sort_unstable();

    // Compress d to ranks with a second integer sort of (d key, sweep
    // position); walking the sorted array assigns dense ranks and records
    // each sweep position's rank in one O(P) pass.
    let mut dpos: Vec<u128> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| ((k as u64 as u128) << 32) | i as u128)
        .collect();
    dpos.sort_unstable();
    let mut rank = vec![0u32; p];
    let mut r = 0u32;
    let mut prev = dpos[0] >> 32;
    for &kp in &dpos {
        let dk = kp >> 32;
        if dk != prev {
            r += 1;
            prev = dk;
        }
        rank[kp as u32 as usize] = r;
    }
    let ranks = (r + 1) as usize;

    // `lo` answers "seen pairs with d strictly below d_b"; `hi` is the same
    // tree over *reversed* ranks so "strictly above" is also a genuine
    // prefix query (an empty set yields exact zeros, never a
    // total-minus-prefix rounding residue).
    let mut lo = Fenwick::new(ranks);
    let mut hi = Fenwick::new(ranks);
    let mut num = 0.0;
    let mut den = 0.0;

    let mut g0 = 0;
    while g0 < p {
        // Equal-s tie group [g0, g1): query every member against the pairs
        // inserted so far (all strictly smaller s), then insert the whole
        // group. Within-group pairs (delta s = 0) thus contribute exactly
        // nothing, as in the naive sum.
        let s0 = keys[g0] >> 64;
        let mut g1 = g0 + 1;
        while g1 < p && keys[g1] >> 64 == s0 {
            g1 += 1;
        }
        for i in g0..g1 {
            let sb = dec_key((keys[i] >> 64) as u64);
            let db = dec_key(keys[i] as u64);
            let r = rank[i] as usize;
            let below = lo.prefix(r);
            let above = hi.prefix(ranks - 1 - r);
            // C = sum (s_b - s_a)(d_b - d_a) over seen a with d_a < d_b.
            let c = sb * db * below[0] - sb * below[2] - db * below[1] + below[3];
            // D' = sum (s_b - s_a)(d_a - d_b) over seen a with d_a > d_b.
            let dp = sb * above[2] - sb * db * above[0] - above[3] + db * above[1];
            num += c - dp;
            den += c + dp;
        }
        for i in g0..g1 {
            let sb = dec_key((keys[i] >> 64) as u64);
            let db = dec_key(keys[i] as u64);
            let r = rank[i] as usize;
            lo.add(r, sb, db);
            hi.add(ranks - 1 - r, sb, db);
        }
        g0 = g1;
    }

    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// The naive O(P^2) pairs-of-pairs sum of Eq. 3, retained as the oracle the
/// fast sweep is tested against (and copied by the `theta_kernel` bench).
#[cfg(test)]
pub(crate) fn mu_statistic_naive(s: &[f64], d: &[f64]) -> f64 {
    assert_eq!(s.len(), d.len(), "pair count mismatch");
    let p = s.len();
    if p < 2 {
        return 1.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for a in 0..p {
        for b in (a + 1)..p {
            let ds = s[a] - s[b];
            let dd = d[a] - d[b];
            num += ds * dd;
            den += ds.abs() * dd.abs();
        }
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// The coefficient of alienation `theta = sqrt(1 - mu^2)` of Eq. 4.
///
/// Degenerate-input convention, fixed at this public boundary: empty,
/// single-pair, and all-tied inputs have `mu = 1` (nothing contradicts
/// monotonicity), and any `|mu| = 1` — including the bitwise-exact ±1 the
/// fast kernel produces for perfect weak monotonicity — returns exactly
/// `0.0` without ever entering a sqrt that could round or (for `|mu| > 1`
/// after accumulation noise, pre-empted by the clamp) go NaN.
///
/// # Panics
/// Panics on a length mismatch.
pub fn coefficient_of_alienation(s: &[f64], d: &[f64]) -> f64 {
    let mu = mu_statistic(s, d).clamp(-1.0, 1.0);
    if mu == 1.0 || mu == -1.0 {
        return 0.0;
    }
    (1.0 - mu * mu).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_monotone_gives_zero_theta() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let d = [10.0, 20.0, 30.0, 40.0];
        assert!((mu_statistic(&s, &d) - 1.0).abs() < 1e-12);
        assert!(coefficient_of_alienation(&s, &d) < 1e-7);
    }

    #[test]
    fn monotone_nonlinear_still_perfect() {
        // Weak monotonicity only needs order agreement, not linearity.
        let s = [1.0, 2.0, 3.0, 4.0];
        let d = [1.0, 8.0, 27.0, 64.0];
        assert!((mu_statistic(&s, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_order_gives_minus_one() {
        let s = [1.0, 2.0, 3.0];
        let d = [3.0, 2.0, 1.0];
        assert!((mu_statistic(&s, &d) + 1.0).abs() < 1e-12);
        // theta = sqrt(1-1) = 0 for perfectly reversed too (|mu| = 1),
        // which is why MDS maximizes mu, not theta alone.
        assert!(coefficient_of_alienation(&s, &d) < 1e-7);
    }

    #[test]
    fn one_inversion_penalized() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let d = [10.0, 30.0, 20.0, 40.0]; // one swap
        let mu = mu_statistic(&s, &d);
        assert!(mu < 1.0 && mu > 0.0);
        let theta = coefficient_of_alienation(&s, &d);
        assert!(theta > 0.0 && theta < 1.0);
    }

    #[test]
    fn ties_do_not_contradict() {
        // Equal dissimilarities mapped to different distances contribute
        // zero to both sums (weak monotonicity).
        let s = [1.0, 1.0, 2.0];
        let d = [5.0, 9.0, 12.0];
        assert!((mu_statistic(&s, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mu_statistic(&[], &[]), 1.0);
        assert_eq!(mu_statistic(&[1.0], &[2.0]), 1.0);
        assert_eq!(mu_statistic(&[1.0, 1.0], &[2.0, 2.0]), 1.0);
    }

    #[test]
    fn degenerate_inputs_give_exact_zero_theta() {
        // The documented public convention: all-tied / empty inputs are
        // theta = 0.0 exactly, not a sqrt round-trip.
        for (s, d) in [
            (vec![], vec![]),
            (vec![3.0], vec![7.0]),
            (vec![2.0, 2.0, 2.0], vec![1.0, 5.0, 9.0]),
            (vec![1.0, 5.0, 9.0], vec![2.0, 2.0, 2.0]),
            (vec![4.0; 6], vec![4.0; 6]),
        ] {
            let theta = coefficient_of_alienation(&s, &d);
            assert_eq!(theta.to_bits(), 0.0f64.to_bits(), "s={s:?} d={d:?}");
        }
    }

    #[test]
    fn perfect_concordance_is_bitwise_one() {
        // Both kernels accumulate num and den through the identical float
        // sequence when every pair-of-pairs is concordant, so mu is 1.0
        // exactly — the property the pinned `"theta":0` stream golden
        // relies on.
        let s: Vec<f64> = (0..40).map(|i| 0.1 + 0.37 * i as f64).collect();
        let d: Vec<f64> = s.iter().map(|x| x * x + 1.0).collect();
        let rev: Vec<f64> = d.iter().map(|x| -x).collect();
        for mu in [mu_quadratic, mu_sweep] {
            assert_eq!(mu(&s, &d).to_bits(), 1.0f64.to_bits());
            assert_eq!(mu(&s, &rev).to_bits(), (-1.0f64).to_bits());
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn simd_paths_match_scalar_lanes_bitwise() {
        // The intrinsic kernels perform the identical IEEE op sequence as
        // the 16-lane scalar kernel, so every path must agree bit for bit
        // across sizes that exercise full blocks and every tail length.
        for p in [2usize, 5, 15, 16, 17, 31, 33, 190, 200] {
            let s: Vec<f64> = (0..p).map(|i| (i as f64 * 0.917).sin() * 30.0).collect();
            let d: Vec<f64> = (0..p)
                .map(|i| (i as f64 * 2.13).cos() * 12.0 + s[i] * 0.4)
                .collect();
            let scalar = mu_quadratic_lanes(&s, &d);
            if std::arch::is_x86_feature_detected!("avx2") {
                let v = unsafe { mu_quadratic_avx2(&s, &d) };
                assert_eq!(v.to_bits(), scalar.to_bits(), "avx2 p={p}");
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                let v = unsafe { mu_quadratic_avx512(&s, &d) };
                assert_eq!(v.to_bits(), scalar.to_bits(), "avx512 p={p}");
            }
        }
    }

    #[test]
    fn key_encoding_round_trips_and_orders() {
        let values = [
            -1e300, -3.5, -0.0, 0.0, 1e-12, 2.0, 7.25, 1e300,
        ];
        for w in values.windows(2) {
            assert!(enc_key(w[0]) <= enc_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        for v in values {
            assert_eq!(dec_key(enc_key(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn dispatcher_uses_sweep_past_the_crossover() {
        // One case big enough to cross SWEEP_MIN_PAIRS through the public
        // entry point, checked against the naive oracle.
        let p = SWEEP_MIN_PAIRS + 37;
        let s: Vec<f64> = (0..p).map(|i| (i as f64 * 0.613).sin() * 40.0).collect();
        let d: Vec<f64> = (0..p)
            .map(|i| (i as f64 * 1.77).cos() * 25.0 + s[i] * 0.3)
            .collect();
        let fast = mu_statistic(&s, &d);
        assert_eq!(fast.to_bits(), mu_sweep(&s, &d).to_bits());
        let naive = mu_statistic_naive(&s, &d);
        assert!((fast - naive).abs() <= 1e-9, "fast={fast} naive={naive}");
    }

    #[test]
    fn random_orders_give_middling_theta() {
        // A scrambled assignment should score clearly worse than monotone.
        let s: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let d: Vec<f64> = (0..20).map(|i| ((i * 7) % 20) as f64).collect();
        let theta = coefficient_of_alienation(&s, &d);
        assert!(theta > 0.5, "theta = {theta}");
    }

    #[test]
    fn theta_bounded() {
        let s = [1.0, 5.0, 2.0, 8.0, 3.0];
        let d = [2.0, 1.0, 9.0, 4.0, 4.5];
        let theta = coefficient_of_alienation(&s, &d);
        assert!((0.0..=1.0).contains(&theta));
    }

    #[test]
    fn fast_matches_naive_on_fixed_cases() {
        let cases: [(&[f64], &[f64]); 5] = [
            (&[1.0, 5.0, 2.0, 8.0, 3.0], &[2.0, 1.0, 9.0, 4.0, 4.5]),
            (&[1.0, 1.0, 2.0, 2.0], &[4.0, 3.0, 2.0, 1.0]),
            (&[0.0, 0.0, 0.0, 1.0], &[5.0, 5.0, 5.0, 5.0]),
            (&[1.0, 2.0], &[2.0, 1.0]),
            (&[-3.0, 0.5, -3.0, 7.0], &[1.0, 1.0, 2.0, 0.0]),
        ];
        for (s, d) in cases {
            let naive = mu_statistic_naive(s, d);
            for (name, mu) in [("quadratic", mu_quadratic as fn(&[f64], &[f64]) -> f64), ("sweep", mu_sweep)] {
                let fast = mu(s, d);
                assert!(
                    (fast - naive).abs() <= 1e-9,
                    "{name}={fast} naive={naive} s={s:?} d={d:?}"
                );
            }
        }
    }

    /// Pair vectors with heavy ties: values drawn from a small integer pool.
    fn tied_pairs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        (2usize..60).prop_flat_map(|p| {
            (
                proptest::collection::vec((0u8..5).prop_map(f64::from), p),
                proptest::collection::vec((0u8..5).prop_map(f64::from), p),
            )
        })
    }

    fn random_pairs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        (1usize..120).prop_flat_map(|p| {
            (
                proptest::collection::vec(-1e3..1e3f64, p),
                proptest::collection::vec(-1e3..1e3f64, p),
            )
        })
    }

    proptest! {
        #[test]
        fn fast_mu_matches_naive_oracle_random(sd in random_pairs()) {
            let (s, d) = sd;
            let naive = mu_statistic_naive(&s, &d);
            for mu in [mu_quadratic, mu_sweep] {
                let fast = mu(&s, &d);
                prop_assert!((fast - naive).abs() <= 1e-9,
                    "fast={fast} naive={naive}");
            }
        }

        #[test]
        fn fast_mu_matches_naive_oracle_tied(sd in tied_pairs()) {
            let (s, d) = sd;
            let naive = mu_statistic_naive(&s, &d);
            for mu in [mu_quadratic, mu_sweep] {
                let fast = mu(&s, &d);
                prop_assert!((fast - naive).abs() <= 1e-9,
                    "fast={fast} naive={naive}");
            }
        }

        #[test]
        fn fast_mu_matches_naive_with_duplicated_pair_values(
            base in proptest::collection::vec(-50.0..50.0f64, 2..20),
            dups in 1usize..4,
        ) {
            // Duplicate the whole pair vector: every value appears `dups+1`
            // times in both s and d, stressing rank compression.
            let s: Vec<f64> = base.iter().copied().cycle()
                .take(base.len() * (dups + 1)).collect();
            let d: Vec<f64> = base.iter().map(|x| x * 2.0 + 1.0).cycle()
                .take(base.len() * (dups + 1)).collect();
            let naive = mu_statistic_naive(&s, &d);
            for mu in [mu_quadratic, mu_sweep] {
                let fast = mu(&s, &d);
                prop_assert!((fast - naive).abs() <= 1e-9,
                    "fast={fast} naive={naive}");
            }
        }

        #[test]
        fn fast_mu_matches_naive_constant_column(
            c in -10.0..10.0f64,
            d in proptest::collection::vec(-10.0..10.0f64, 1..30),
        ) {
            // Constant s (an all-tied column surviving into the pair
            // vector): both must take the den == 0 branch and agree.
            let s = vec![c; d.len()];
            prop_assert_eq!(mu_quadratic(&s, &d), mu_statistic_naive(&s, &d));
            prop_assert_eq!(mu_sweep(&s, &d), mu_statistic_naive(&s, &d));
        }

        #[test]
        fn fast_mu_matches_naive_tiny_shapes(
            s in proptest::collection::vec(-5.0..5.0f64, 1..4),
            d in proptest::collection::vec(-5.0..5.0f64, 1..4),
        ) {
            // n in {2, 3} observations gives P in {1, 3} pairs.
            let p = s.len().min(d.len());
            let naive = mu_statistic_naive(&s[..p], &d[..p]);
            for mu in [mu_quadratic, mu_sweep] {
                let fast = mu(&s[..p], &d[..p]);
                prop_assert!((fast - naive).abs() <= 1e-9,
                    "fast={fast} naive={naive}");
            }
        }
    }
}
