//! The full four-stage Co-plot pipeline behind a builder API.
//!
//! [`Coplot`] is a stateless facade: each `analyze*` call builds a
//! [`CoplotEngine`](crate::engine::CoplotEngine) and runs it, so the
//! engine's caching still benefits multi-round workflows such as variable
//! elimination within one call. Callers that want caching *across* calls,
//! custom stages, or per-stage instrumentation should hold an engine
//! directly (see [`Coplot::engine`]).

use crate::arrows::Arrow;
use crate::data::{DataMatrix, Imputation};
use crate::dissimilarity::{DissimilarityMatrix, Metric};
use crate::engine::{CoplotEngine, Selection};
pub use crate::error::CoplotError;
use crate::mds::MdsConfig;
use wl_linalg::Matrix;

/// Builder for a Co-plot analysis.
#[derive(Debug, Clone)]
pub struct Coplot {
    metric: Metric,
    imputation: Imputation,
    mds: MdsConfig,
}

impl Default for Coplot {
    fn default() -> Self {
        Coplot {
            metric: Metric::CityBlock,
            // Table 1 has N/A cells; mapping them to "average" (z = 0) is
            // the least-commitment default for exploratory runs. Callers
            // reproducing the paper's exact imputations pre-fill the matrix
            // and may switch to `Forbid`.
            imputation: Imputation::ColumnMean,
            mds: MdsConfig::default(),
        }
    }
}

impl Coplot {
    /// A pipeline with the paper's defaults: city-block dissimilarity,
    /// column-mean imputation, classical init + 8 random MDS restarts.
    pub fn new() -> Self {
        Coplot::default()
    }

    /// Choose the stage-2 metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Choose the missing-cell policy.
    pub fn imputation(mut self, imputation: Imputation) -> Self {
        self.imputation = imputation;
        self
    }

    /// Seed the MDS restarts.
    pub fn seed(mut self, seed: u64) -> Self {
        self.mds.seed = seed;
        self
    }

    /// Number of random restarts (beyond the classical-scaling start).
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.mds.restarts = restarts;
        self
    }

    /// Majorization iteration cap per start.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.mds.max_iterations = iters;
        self
    }

    /// Worker threads for the MDS restarts (1 = sequential; results are
    /// bit-identical for any thread count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.mds.threads = threads;
        self
    }

    /// A [`CoplotEngine`] with this builder's configuration — the way to
    /// keep the normalization/dissimilarity caches warm across calls and to
    /// read per-stage [`StageReport`](crate::engine::StageReport)s.
    pub fn engine(&self) -> CoplotEngine {
        CoplotEngine::builder()
            .metric(self.metric)
            .imputation(self.imputation)
            .mds(self.mds)
            .build()
    }

    /// Run all four stages on a data matrix.
    ///
    /// # Errors
    /// Any stage's [`CoplotError`]: normalization failures, degenerate
    /// inputs, non-finite data, or a degenerate arrow fit.
    pub fn analyze(&self, data: &DataMatrix) -> Result<CoplotResult, CoplotError> {
        self.engine().run(data, &Selection::All)
    }

    /// The paper's variable-elimination workflow: run the analysis, drop the
    /// worst variable while any arrow correlation is below
    /// `min_correlation`, re-run, repeat. Returns the final result plus the
    /// names of removed variables, in removal order.
    ///
    /// At least two variables are always kept; if even those fall below the
    /// threshold the last result is returned anyway (matching how the paper
    /// reports maps with a few weaker variables noted). Data is normalized
    /// and its dissimilarity contributions computed once; each round only
    /// re-embeds (see [`crate::engine`]).
    ///
    /// # Errors
    /// Any stage's [`CoplotError`].
    pub fn analyze_with_elimination(
        &self,
        data: &DataMatrix,
        min_correlation: f64,
    ) -> Result<(CoplotResult, Vec<String>), CoplotError> {
        let result = self
            .engine()
            .run(data, &Selection::Eliminate { min_correlation })?;
        let removed = result.removed.clone();
        Ok((result, removed))
    }
}

/// The output of a Co-plot analysis: the map, the arrows, and the two
/// goodness-of-fit layers.
#[derive(Debug, Clone)]
pub struct CoplotResult {
    /// Observation names, matching `coords` rows.
    pub observations: Vec<String>,
    /// `n x 2` map coordinates (centered, unit RMS radius).
    pub coords: Matrix,
    /// One fitted arrow per surviving variable.
    pub arrows: Vec<Arrow>,
    /// Stage-3 goodness of fit: Guttman's coefficient of alienation.
    pub alienation: f64,
    /// Kruskal stress-1 (diagnostic).
    pub stress: f64,
    /// The stage-2 dissimilarities (kept for diagnostics/rendering).
    pub dissimilarities: DissimilarityMatrix,
    /// Variables dropped by a [`Selection::Eliminate`] run, in removal
    /// order; empty for every other selection.
    pub removed: Vec<String>,
}

impl CoplotResult {
    /// Position of an observation by name.
    pub fn position(&self, name: &str) -> Option<(f64, f64)> {
        let i = self.observations.iter().position(|o| o == name)?;
        Some((self.coords[(i, 0)], self.coords[(i, 1)]))
    }

    /// Arrow for a variable by name.
    pub fn arrow(&self, name: &str) -> Option<&Arrow> {
        self.arrows.iter().find(|a| a.name == name)
    }

    /// Mean of the absolute arrow correlations (the paper's stage-4 summary
    /// statistic: "average of variable correlations").
    pub fn mean_arrow_correlation(&self) -> f64 {
        if self.arrows.is_empty() {
            return f64::NAN;
        }
        self.arrows.iter().map(|a| a.correlation.abs()).sum::<f64>() / self.arrows.len() as f64
    }

    /// Smallest absolute arrow correlation.
    pub fn min_arrow_correlation(&self) -> f64 {
        self.arrows
            .iter()
            .map(|a| a.correlation.abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Map distance between two observations by name.
    pub fn map_distance(&self, a: &str, b: &str) -> Option<f64> {
        let (ax, ay) = self.position(a)?;
        let (bx, by) = self.position(b)?;
        Some(((ax - bx).powi(2) + (ay - by).powi(2)).sqrt())
    }

    /// Projection of an observation onto a variable's arrow — proportional
    /// to how far above/below average the observation is in that variable
    /// (positive = in the arrow's direction = above average).
    pub fn projection(&self, observation: &str, variable: &str) -> Option<f64> {
        let (x, y) = self.position(observation)?;
        let a = self.arrow(variable)?;
        Some(x * a.direction[0] + y * a.direction[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small synthetic data set with clear structure: two clusters of
    /// observations and three variable groups (x-like, y-like, anti-x).
    fn structured_data() -> DataMatrix {
        DataMatrix::from_rows(
            vec![
                "lo1".into(),
                "lo2".into(),
                "lo3".into(),
                "hi1".into(),
                "hi2".into(),
                "hi3".into(),
            ],
            vec!["a".into(), "a2".into(), "anti".into(), "b".into()],
            &[
                &[1.0, 1.1, 9.0, 5.0],
                &[1.2, 1.0, 8.8, 3.0],
                &[0.9, 1.2, 9.1, 4.0],
                &[5.0, 5.2, 1.0, 4.2],
                &[5.3, 4.9, 1.2, 2.8],
                &[4.8, 5.1, 0.8, 5.1],
            ],
        )
    }

    #[test]
    fn analyze_produces_good_fit_on_structured_data() {
        let r = Coplot::new().seed(1).analyze(&structured_data()).unwrap();
        assert!(r.alienation < 0.15, "theta = {}", r.alienation);
        assert_eq!(r.observations.len(), 6);
        assert_eq!(r.arrows.len(), 4);
    }

    #[test]
    fn correlated_variables_get_parallel_arrows() {
        let r = Coplot::new().seed(2).analyze(&structured_data()).unwrap();
        let a = r.arrow("a").unwrap();
        let a2 = r.arrow("a2").unwrap();
        let anti = r.arrow("anti").unwrap();
        assert!(a.cos_angle_with(a2) > 0.95, "cos = {}", a.cos_angle_with(a2));
        assert!(
            a.cos_angle_with(anti) < -0.95,
            "cos = {}",
            a.cos_angle_with(anti)
        );
    }

    #[test]
    fn clusters_are_separated_in_the_map() {
        let r = Coplot::new().seed(3).analyze(&structured_data()).unwrap();
        // Every within-cluster distance is smaller than every
        // between-cluster distance.
        let lo = ["lo1", "lo2", "lo3"];
        let hi = ["hi1", "hi2", "hi3"];
        let mut max_within: f64 = 0.0;
        for g in [&lo, &hi] {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    max_within = max_within.max(r.map_distance(g[i], g[k]).unwrap());
                }
            }
        }
        let mut min_between = f64::INFINITY;
        for a in &lo {
            for b in &hi {
                min_between = min_between.min(r.map_distance(a, b).unwrap());
            }
        }
        assert!(
            max_within < min_between,
            "within {max_within} vs between {min_between}"
        );
    }

    #[test]
    fn projections_recover_above_below_average() {
        let r = Coplot::new().seed(4).analyze(&structured_data()).unwrap();
        // hi* observations are above average in variable "a": positive
        // projections; lo* below: negative.
        for o in ["hi1", "hi2", "hi3"] {
            assert!(r.projection(o, "a").unwrap() > 0.0, "{o}");
        }
        for o in ["lo1", "lo2", "lo3"] {
            assert!(r.projection(o, "a").unwrap() < 0.0, "{o}");
        }
    }

    #[test]
    fn elimination_drops_noise_variable() {
        // Four variables define a strong two-dimensional structure (two
        // correlated pairs); a fifth independent variable has nowhere to go
        // in the plane and must be eliminated.
        let d = DataMatrix::from_rows(
            (1..=8).map(|i| format!("o{i}")).collect(),
            vec![
                "x".into(),
                "x2".into(),
                "y".into(),
                "y2".into(),
                "noise".into(),
            ],
            &[
                &[1.0, 1.1, 8.0, 7.9, 3.0],
                &[2.0, 2.2, 1.0, 1.2, -1.0],
                &[3.0, 2.9, 6.0, 6.1, 4.0],
                &[4.0, 4.1, 2.0, 2.1, -3.0],
                &[5.0, 4.8, 7.0, 7.2, 3.5],
                &[6.0, 6.2, 3.0, 2.8, -2.0],
                &[7.0, 7.1, 5.0, 5.2, 2.0],
                &[8.0, 7.9, 4.0, 4.1, -4.0],
            ],
        );
        // With seed 5 the four structure variables fit with r >= 0.985
        // while the extra variable only reaches ~0.91: a threshold between
        // the two eliminates exactly it.
        let (r, removed) = Coplot::new()
            .seed(5)
            .analyze_with_elimination(&d, 0.95)
            .unwrap();
        assert!(
            removed.contains(&"noise".to_string()),
            "removed = {removed:?}"
        );
        assert!(r.arrow("x").is_some() && r.arrow("y").is_some());
        assert!(r.min_arrow_correlation() >= 0.95 || r.arrows.len() == 2);
    }

    #[test]
    fn elimination_keeps_at_least_two_variables() {
        let d = DataMatrix::from_rows(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec!["u".into(), "v".into()],
            &[&[1.0, 3.0], &[2.0, 1.0], &[3.0, 4.0], &[4.0, 2.0]],
        );
        // Absurd threshold: still returns a 2-variable result.
        let (r, removed) = Coplot::new()
            .seed(6)
            .analyze_with_elimination(&d, 0.9999)
            .unwrap();
        assert!(r.arrows.len() >= 2);
        assert!(removed.is_empty());
    }

    #[test]
    fn summary_statistics() {
        let r = Coplot::new().seed(7).analyze(&structured_data()).unwrap();
        let mean = r.mean_arrow_correlation();
        let min = r.min_arrow_correlation();
        assert!(min <= mean && mean <= 1.0 && min >= 0.0);
    }

    #[test]
    fn unknown_names_return_none() {
        let r = Coplot::new().analyze(&structured_data()).unwrap();
        assert!(r.position("nope").is_none());
        assert!(r.arrow("nope").is_none());
        assert!(r.map_distance("lo1", "nope").is_none());
    }

    #[test]
    fn forbid_imputation_propagates_error() {
        let d = DataMatrix::from_optional_rows(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["v".into(), "w".into()],
            &[
                &[Some(1.0), Some(2.0)],
                &[None, Some(3.0)],
                &[Some(2.0), Some(4.0)],
            ],
        );
        let err = Coplot::new()
            .imputation(Imputation::Forbid)
            .analyze(&d)
            .unwrap_err();
        assert!(matches!(err, CoplotError::Normalization(_)));
    }
}
