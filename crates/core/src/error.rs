//! The workspace-wide error taxonomy for Co-plot analyses.
//!
//! Every public entry point of the pipeline returns [`CoplotError`] instead
//! of panicking on invalid input, so callers (the CLI, the reproduction
//! binaries, the analysis crate) can report *which* stage rejected the data
//! and why. Errors from the substrate crates are converted via `From`:
//! [`wl_linalg::LinalgError`] and [`wl_stats::StatsError`] here, and
//! `wl_trace::ParseError` from within `wl-trace` (the crate that owns that
//! type).

use std::fmt;
use wl_linalg::LinalgError;
use wl_stats::StatsError;

/// Typed reason a data line could not be parsed; mirrored from
/// `wl_trace::ParseErrorKind` (the orphan rule keeps the concrete type
/// there) so callers can dispatch without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseKind {
    /// Wrong number of whitespace-separated fields (truncated or padded
    /// line).
    FieldCount,
    /// A field was not numeric.
    NotNumeric,
    /// A field that must be non-negative (the job id) was negative.
    NegativeId,
    /// A field parsed to NaN or an infinity.
    NonFinite,
    /// A timestamp field did not parse (web access logs carry calendar
    /// timestamps rather than relative seconds).
    BadTimestamp,
    /// A request field was structurally malformed (e.g. the quoted
    /// `"METHOD path protocol"` group of an access log).
    BadRequest,
    /// Any other malformation.
    Other,
}

impl ParseKind {
    /// Short kebab-case label, stable for metrics and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            ParseKind::FieldCount => "field-count",
            ParseKind::NotNumeric => "not-numeric",
            ParseKind::NegativeId => "negative-id",
            ParseKind::NonFinite => "non-finite",
            ParseKind::BadTimestamp => "bad-timestamp",
            ParseKind::BadRequest => "bad-request",
            ParseKind::Other => "other",
        }
    }
}

/// Why an analysis could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum CoplotError {
    /// Stage-1 normalization failed (missing data under `Forbid`, constant
    /// variable, too few observations...).
    Normalization(String),
    /// A variable's arrow could not be fitted.
    DegenerateVariable(String),
    /// Variable elimination removed everything below the threshold.
    NothingLeft,
    /// The input had no observations or no variables at all.
    EmptyInput {
        /// What was empty ("observations", "variables", "workloads"...).
        what: &'static str,
    },
    /// Fewer observations than the stage can work with.
    TooFewObservations {
        /// How many observations were supplied.
        n: usize,
        /// The minimum the stage needs.
        min: usize,
    },
    /// Two dimensions that must agree did not (ragged rows, arrow column vs
    /// configuration, embedding dimension out of range...).
    DimensionMismatch {
        /// Which stage or structure rejected the input.
        context: String,
        /// The dimension it expected.
        expected: usize,
        /// The dimension it got.
        got: usize,
    },
    /// A cell or derived quantity was NaN or infinite.
    NonFinite(String),
    /// An iterative stage hit its iteration cap without converging.
    NonConvergence {
        /// Which stage failed to converge.
        stage: &'static str,
        /// Iterations spent before giving up.
        iterations: usize,
    },
    /// A caller-supplied knob was out of range (subset size, period count,
    /// unknown variable code...).
    InvalidConfig(String),
    /// Input data could not be parsed (`wl-trace` converts its `ParseError`
    /// into this; the fields mirror it so no dependency cycle is needed).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What kind of malformation was found.
        kind: ParseKind,
        /// Human-readable description.
        message: String,
    },
    /// A per-request deadline expired between pipeline stages (the serving
    /// layer's stage-boundary abort; the stage named is the one that was
    /// about to run).
    DeadlineExceeded {
        /// The stage that would have run next.
        stage: &'static str,
    },
    /// A streaming consumer configured with the `reject` out-of-order policy
    /// received job records whose submit timestamps were not already sorted
    /// ascending. `inversions` counts the adjacent descending pairs seen in
    /// the original record order.
    UnsortedInput {
        /// Adjacent submit-time inversions in arrival order.
        inversions: usize,
    },
    /// A linear-algebra kernel rejected its input.
    Linalg(LinalgError),
    /// A statistics kernel rejected its input.
    Stats(StatsError),
}

impl fmt::Display for CoplotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoplotError::Normalization(msg) => write!(f, "normalization failed: {msg}"),
            CoplotError::DegenerateVariable(name) => {
                write!(f, "variable {name:?} has a degenerate arrow fit")
            }
            CoplotError::NothingLeft => {
                write!(f, "no variables survive the correlation threshold")
            }
            CoplotError::EmptyInput { what } => write!(f, "empty input: no {what}"),
            CoplotError::TooFewObservations { n, min } => {
                write!(f, "need at least {min} observations, have {n}")
            }
            CoplotError::DimensionMismatch {
                context,
                expected,
                got,
            } => write!(f, "{context}: dimension mismatch (expected {expected}, got {got})"),
            CoplotError::NonFinite(msg) => write!(f, "non-finite value: {msg}"),
            CoplotError::NonConvergence { stage, iterations } => {
                write!(f, "{stage} did not converge within {iterations} iterations")
            }
            CoplotError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoplotError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded before stage {stage}")
            }
            CoplotError::UnsortedInput { inversions } => write!(
                f,
                "job records are not sorted by submit time \
                 ({inversions} adjacent inversions; use the sort policy to accept them)"
            ),
            CoplotError::Parse { line, kind, message } => {
                write!(f, "parse error at line {line} ({}): {message}", kind.label())
            }
            CoplotError::Linalg(e) => write!(f, "linear algebra: {e}"),
            CoplotError::Stats(e) => write!(f, "statistics: {e}"),
        }
    }
}

impl std::error::Error for CoplotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoplotError::Linalg(e) => Some(e),
            CoplotError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoplotError {
    fn from(e: LinalgError) -> Self {
        CoplotError::Linalg(e)
    }
}

impl From<StatsError> for CoplotError {
    fn from(e: StatsError) -> Self {
        CoplotError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substrate_errors_convert() {
        let e: CoplotError = LinalgError::NonFinite { context: "jacobi_eigen" }.into();
        assert!(matches!(e, CoplotError::Linalg(_)));
        assert!(e.to_string().contains("jacobi_eigen"));
        let e: CoplotError = StatsError::EmptyInput { context: "pearson" }.into();
        assert!(matches!(e, CoplotError::Stats(_)));
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error;
        let e: CoplotError = LinalgError::NonFinite { context: "x" }.into();
        assert!(e.source().is_some());
        assert!(CoplotError::NothingLeft.source().is_none());
    }

    #[test]
    fn display_covers_new_variants() {
        let e = CoplotError::TooFewObservations { n: 2, min: 3 };
        assert!(e.to_string().contains("at least 3"));
        let e = CoplotError::NonConvergence { stage: "mds", iterations: 300 };
        assert!(e.to_string().contains("converge"));
        let e = CoplotError::EmptyInput { what: "workloads" };
        assert!(e.to_string().contains("workloads"));
        let e = CoplotError::Parse {
            line: 7,
            kind: ParseKind::NotNumeric,
            message: "field 3 not numeric".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("not-numeric"));
        let e = CoplotError::DeadlineExceeded { stage: "embedding" };
        assert!(e.to_string().contains("deadline"));
        assert!(e.to_string().contains("embedding"));
        let e = CoplotError::UnsortedInput { inversions: 4 };
        assert!(e.to_string().contains("4 adjacent inversions"));
    }
}
