//! Rendering Co-plot results as text maps and standalone SVG.
//!
//! The paper presents its results as figures: observation points labeled by
//! workload name, with variable arrows radiating from the centroid. The SVG
//! renderer reproduces that presentation; the text renderer gives a quick
//! terminal view plus the full numeric table (coordinates, arrow angles,
//! correlations, and the stage-3/stage-4 goodness-of-fit summary).

use crate::pipeline::CoplotResult;

/// Render an ASCII map (grid `width x height` characters) plus a numeric
/// legend. Observations are marked by index, arrows by lowercase letters at
/// their unit-circle tip.
pub fn render_text(result: &CoplotResult, width: usize, height: usize) -> String {
    let width = width.max(20);
    let height = height.max(10);
    let n = result.observations.len();

    // Bounds covering points and unit arrow tips, with margin.
    let mut min_x: f64 = -1.2;
    let mut max_x: f64 = 1.2;
    let mut min_y: f64 = -1.2;
    let mut max_y: f64 = 1.2;
    for i in 0..n {
        min_x = min_x.min(result.coords[(i, 0)] - 0.2);
        max_x = max_x.max(result.coords[(i, 0)] + 0.2);
        min_y = min_y.min(result.coords[(i, 1)] - 0.2);
        max_y = max_y.max(result.coords[(i, 1)] + 0.2);
    }

    let mut grid = vec![vec![' '; width]; height];
    let place = |grid: &mut Vec<Vec<char>>, x: f64, y: f64, ch: char| {
        let gx = ((x - min_x) / (max_x - min_x) * (width - 1) as f64).round() as usize;
        // Screen y is flipped.
        let gy = ((max_y - y) / (max_y - min_y) * (height - 1) as f64).round() as usize;
        let gx = gx.min(width - 1);
        let gy = gy.min(height - 1);
        grid[gy][gx] = ch;
    };

    // Centroid marker.
    place(&mut grid, 0.0, 0.0, '+');
    // Arrows at their unit tips: a, b, c, ...
    for (i, arrow) in result.arrows.iter().enumerate() {
        let ch = (b'a' + (i % 26) as u8) as char;
        place(&mut grid, arrow.direction[0], arrow.direction[1], ch);
    }
    // Observations: digits then uppercase letters.
    for i in 0..n {
        let ch = if i < 10 {
            (b'0' + i as u8) as char
        } else {
            (b'A' + ((i - 10) % 26) as u8) as char
        };
        place(&mut grid, result.coords[(i, 0)], result.coords[(i, 1)], ch);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Co-plot map (theta = {:.3}, mean arrow corr = {:.3})\n",
        result.alienation,
        result.mean_arrow_correlation()
    ));
    out.push('┌');
    out.push_str(&"─".repeat(width));
    out.push_str("┐\n");
    for row in &grid {
        out.push('│');
        out.extend(row.iter());
        out.push_str("│\n");
    }
    out.push('└');
    out.push_str(&"─".repeat(width));
    out.push_str("┘\n");

    out.push_str("observations:\n");
    for (i, name) in result.observations.iter().enumerate() {
        let ch = if i < 10 {
            (b'0' + i as u8) as char
        } else {
            (b'A' + ((i - 10) % 26) as u8) as char
        };
        out.push_str(&format!(
            "  {ch} {name:<10} ({:+.3}, {:+.3})\n",
            result.coords[(i, 0)],
            result.coords[(i, 1)]
        ));
    }
    out.push_str("variables (arrow direction, max correlation):\n");
    for (i, a) in result.arrows.iter().enumerate() {
        let ch = (b'a' + (i % 26) as u8) as char;
        out.push_str(&format!(
            "  {ch} {:<10} angle {:+7.1}° r = {:.3}\n",
            a.name,
            a.angle().to_degrees(),
            a.correlation
        ));
    }
    out
}

/// Render a standalone SVG figure in the paper's style: labeled observation
/// points, variable arrows from the centroid, and a caption with the
/// goodness-of-fit statistics.
pub fn render_svg(result: &CoplotResult, title: &str) -> String {
    const SIZE: f64 = 640.0;
    const MARGIN: f64 = 60.0;
    let n = result.observations.len();

    // World bounds: points plus unit arrows.
    let mut bound: f64 = 1.3;
    for i in 0..n {
        bound = bound
            .max(result.coords[(i, 0)].abs() + 0.3)
            .max(result.coords[(i, 1)].abs() + 0.3);
    }
    let scale = (SIZE - 2.0 * MARGIN) / (2.0 * bound);
    let to_px = |x: f64, y: f64| -> (f64, f64) {
        (SIZE / 2.0 + x * scale, SIZE / 2.0 - y * scale)
    };

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{SIZE}\" height=\"{}\" \
         viewBox=\"0 0 {SIZE} {}\">\n",
        SIZE + 40.0,
        SIZE + 40.0
    ));
    svg.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"28\" text-anchor=\"middle\" font-family=\"sans-serif\" \
         font-size=\"18\">{}</text>\n",
        SIZE / 2.0,
        xml_escape(title)
    ));

    // Arrows from the centroid (length 1 in world units).
    let (cx, cy) = to_px(0.0, 0.0);
    for a in &result.arrows {
        let (tx, ty) = to_px(a.direction[0], a.direction[1]);
        svg.push_str(&format!(
            "<line x1=\"{cx:.1}\" y1=\"{cy:.1}\" x2=\"{tx:.1}\" y2=\"{ty:.1}\" \
             stroke=\"#c33\" stroke-width=\"1.5\"/>\n"
        ));
        // Arrowhead: two short lines.
        let angle = (ty - cy).atan2(tx - cx);
        for da in [-0.45f64, 0.45] {
            let hx = tx - 10.0 * (angle + da).cos();
            let hy = ty - 10.0 * (angle + da).sin();
            svg.push_str(&format!(
                "<line x1=\"{tx:.1}\" y1=\"{ty:.1}\" x2=\"{hx:.1}\" y2=\"{hy:.1}\" \
                 stroke=\"#c33\" stroke-width=\"1.5\"/>\n"
            ));
        }
        // Label slightly beyond the tip.
        let (lx, ly) = to_px(a.direction[0] * 1.12, a.direction[1] * 1.12);
        svg.push_str(&format!(
            "<text x=\"{lx:.1}\" y=\"{ly:.1}\" text-anchor=\"middle\" \
             font-family=\"sans-serif\" font-size=\"12\" fill=\"#c33\">{}</text>\n",
            xml_escape(&a.name)
        ));
    }

    // Observation points with labels.
    for i in 0..n {
        let (px, py) = to_px(result.coords[(i, 0)], result.coords[(i, 1)]);
        svg.push_str(&format!(
            "<circle cx=\"{px:.1}\" cy=\"{py:.1}\" r=\"4\" fill=\"#235\"/>\n"
        ));
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-family=\"sans-serif\" font-size=\"12\" \
             fill=\"#235\">{}</text>\n",
            px + 6.0,
            py - 6.0,
            xml_escape(&result.observations[i])
        ));
    }

    // Caption with the goodness-of-fit statistics.
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-family=\"sans-serif\" \
         font-size=\"14\">coefficient of alienation = {:.3}; \
         mean arrow correlation = {:.3}</text>\n",
        SIZE / 2.0,
        SIZE + 24.0,
        result.alienation,
        result.mean_arrow_correlation()
    ));
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataMatrix;
    use crate::pipeline::Coplot;

    fn result() -> CoplotResult {
        let d = DataMatrix::from_rows(
            vec!["one".into(), "two".into(), "three".into(), "four".into()],
            vec!["u".into(), "v".into()],
            &[&[1.0, 4.0], &[2.0, 3.0], &[3.0, 2.0], &[4.0, 1.0]],
        );
        Coplot::new().seed(11).analyze(&d).unwrap()
    }

    #[test]
    fn text_render_contains_everything() {
        let txt = render_text(&result(), 60, 24);
        assert!(txt.contains("theta ="));
        for name in ["one", "two", "three", "four", "u", "v"] {
            assert!(txt.contains(name), "missing {name}:\n{txt}");
        }
        assert!(txt.contains('°'));
    }

    #[test]
    fn text_render_clamps_tiny_sizes() {
        // Degenerate sizes are clamped, not panicking.
        let txt = render_text(&result(), 1, 1);
        assert!(txt.contains("observations"));
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = render_svg(&result(), "Test & Figure <1>");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Escaping applied to the title.
        assert!(svg.contains("Test &amp; Figure &lt;1&gt;"));
        // One circle per observation, one line set per arrow.
        assert_eq!(svg.matches("<circle").count(), 4);
        assert!(svg.matches("<line").count() >= 2 * 3); // 2 arrows x 3 lines
        // Balanced tags for the elements we emit.
        assert_eq!(
            svg.matches("<text").count(),
            svg.matches("</text>").count()
        );
    }

    #[test]
    fn svg_caption_reports_fit() {
        let r = result();
        let svg = render_svg(&r, "t");
        assert!(svg.contains("coefficient of alienation"));
        assert!(svg.contains(&format!("{:.3}", r.alienation)));
    }
}
