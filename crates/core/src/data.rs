//! Observation-by-variable data matrices and stage-1 normalization.
//!
//! The input to Co-plot is a matrix `Y` of `n` observations by `p`
//! variables, possibly with missing cells (the paper's Table 1 has several
//! "N/A"s). Stage 1 turns each column into z-scores:
//! `Z_ij = (Y_ij - mean_j) / std_j` (Eq. 1), which makes the city-block
//! distances of stage 2 unit-free.

use crate::error::CoplotError;
use wl_stats::describe;

/// How to handle missing cells before analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Imputation {
    /// Refuse to analyze incomplete data (error in the pipeline).
    #[default]
    Forbid,
    /// Replace a missing cell with its column mean — equivalently, a
    /// z-score of zero, i.e. "this observation is average in this variable".
    ColumnMean,
    /// Drop every variable that has any missing cell.
    DropVariables,
}

/// A named observations-by-variables matrix with optional missing cells.
#[derive(Debug, Clone, PartialEq)]
pub struct DataMatrix {
    observations: Vec<String>,
    variables: Vec<String>,
    /// Row-major `n x p` cells; `None` is a missing value.
    cells: Vec<Option<f64>>,
}

impl DataMatrix {
    /// Build from complete rows.
    ///
    /// Convenience constructor for statically-shaped data; use
    /// [`DataMatrix::try_from_rows`] for untrusted input.
    ///
    /// # Panics
    /// Panics if row lengths don't match the variable count.
    pub fn from_rows(
        observations: Vec<String>,
        variables: Vec<String>,
        rows: &[&[f64]],
    ) -> DataMatrix {
        Self::try_from_rows(observations, variables, rows).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build from complete rows, reporting shape mismatches as errors.
    ///
    /// # Errors
    /// Returns [`CoplotError::DimensionMismatch`] when the row count
    /// doesn't match the observation names or a row's length doesn't match
    /// the variable count.
    pub fn try_from_rows(
        observations: Vec<String>,
        variables: Vec<String>,
        rows: &[&[f64]],
    ) -> Result<DataMatrix, CoplotError> {
        let optional: Vec<Vec<Option<f64>>> = rows
            .iter()
            .map(|row| row.iter().map(|&v| Some(v)).collect())
            .collect();
        let refs: Vec<&[Option<f64>]> = optional.iter().map(|r| r.as_slice()).collect();
        Self::try_from_optional_rows(observations, variables, &refs)
    }

    /// Build from rows that may contain missing values.
    ///
    /// Convenience constructor for statically-shaped data; use
    /// [`DataMatrix::try_from_optional_rows`] for untrusted input.
    ///
    /// # Panics
    /// Panics if row lengths don't match the variable count.
    pub fn from_optional_rows(
        observations: Vec<String>,
        variables: Vec<String>,
        rows: &[&[Option<f64>]],
    ) -> DataMatrix {
        Self::try_from_optional_rows(observations, variables, rows)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build from rows that may contain missing values, reporting shape
    /// mismatches as errors.
    ///
    /// # Errors
    /// Returns [`CoplotError::DimensionMismatch`] when the row count
    /// doesn't match the observation names or a row's length doesn't match
    /// the variable count.
    pub fn try_from_optional_rows(
        observations: Vec<String>,
        variables: Vec<String>,
        rows: &[&[Option<f64>]],
    ) -> Result<DataMatrix, CoplotError> {
        if rows.len() != observations.len() {
            return Err(CoplotError::DimensionMismatch {
                context: "data matrix rows vs observation names".into(),
                expected: observations.len(),
                got: rows.len(),
            });
        }
        let p = variables.len();
        let mut cells = Vec::with_capacity(rows.len() * p);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != p {
                return Err(CoplotError::DimensionMismatch {
                    context: format!("data matrix row {i}"),
                    expected: p,
                    got: row.len(),
                });
            }
            cells.extend_from_slice(row);
        }
        Ok(DataMatrix {
            observations,
            variables,
            cells,
        })
    }

    /// Number of observations `n`.
    pub fn n_observations(&self) -> usize {
        self.observations.len()
    }

    /// Number of variables `p`.
    pub fn n_variables(&self) -> usize {
        self.variables.len()
    }

    /// Observation names.
    pub fn observations(&self) -> &[String] {
        &self.observations
    }

    /// Variable names.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// Cell value (None = missing).
    pub fn get(&self, obs: usize, var: usize) -> Option<f64> {
        self.cells[obs * self.variables.len() + var]
    }

    /// Column `var` with missing cells preserved.
    pub fn column(&self, var: usize) -> Vec<Option<f64>> {
        (0..self.observations.len())
            .map(|i| self.get(i, var))
            .collect()
    }

    /// True when some cell is missing.
    pub fn has_missing(&self) -> bool {
        self.cells.iter().any(|c| c.is_none())
    }

    /// A copy keeping only the variables at the given indices, in order.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn select_variables(&self, keep: &[usize]) -> DataMatrix {
        let p = self.variables.len();
        for &k in keep {
            assert!(k < p, "variable index {k} out of range");
        }
        let variables = keep.iter().map(|&k| self.variables[k].clone()).collect();
        let mut cells = Vec::with_capacity(self.observations.len() * keep.len());
        for i in 0..self.observations.len() {
            for &k in keep {
                cells.push(self.get(i, k));
            }
        }
        DataMatrix {
            observations: self.observations.clone(),
            variables,
            cells,
        }
    }

    /// A copy keeping only variables by name (unknown names are an error).
    pub fn select_variables_by_name(&self, names: &[&str]) -> Result<DataMatrix, String> {
        let mut keep = Vec::with_capacity(names.len());
        for name in names {
            let idx = self
                .variables
                .iter()
                .position(|v| v == name)
                .ok_or_else(|| format!("unknown variable {name:?}"))?;
            keep.push(idx);
        }
        Ok(self.select_variables(&keep))
    }

    /// A copy keeping only the observations at the given indices, in order.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn select_observations(&self, keep: &[usize]) -> DataMatrix {
        let n = self.observations.len();
        for &k in keep {
            assert!(k < n, "observation index {k} out of range");
        }
        let observations = keep.iter().map(|&k| self.observations[k].clone()).collect();
        let mut cells = Vec::with_capacity(keep.len() * self.variables.len());
        for &k in keep {
            for v in 0..self.variables.len() {
                cells.push(self.get(k, v));
            }
        }
        DataMatrix {
            observations,
            variables: self.variables.clone(),
            cells,
        }
    }

    /// A copy dropping observations by name (unknown names are an error).
    pub fn drop_observations_by_name(&self, names: &[&str]) -> Result<DataMatrix, String> {
        for name in names {
            if !self.observations.iter().any(|o| o == name) {
                return Err(format!("unknown observation {name:?}"));
            }
        }
        let keep: Vec<usize> = (0..self.observations.len())
            .filter(|&i| !names.contains(&self.observations[i].as_str()))
            .collect();
        Ok(self.select_observations(&keep))
    }

    /// Stage-1 normalization with the chosen missing-cell policy.
    ///
    /// Column statistics are computed over *present* cells. Constant columns
    /// (zero standard deviation) are rejected: their z-scores are undefined
    /// and they carry no ordering information. NaN or infinite cells are
    /// rejected outright — they are data corruption, not missing values.
    pub fn normalize(&self, imputation: Imputation) -> Result<NormalizedMatrix, CoplotError> {
        let n = self.observations.len();
        if n < 3 {
            return Err(CoplotError::TooFewObservations { n, min: 3 });
        }
        if self.variables.is_empty() {
            return Err(CoplotError::EmptyInput { what: "variables" });
        }

        // Choose the surviving variables.
        let keep: Vec<usize> = match imputation {
            Imputation::DropVariables => (0..self.variables.len())
                .filter(|&v| (0..n).all(|i| self.get(i, v).is_some()))
                .collect(),
            _ => (0..self.variables.len()).collect(),
        };
        if keep.is_empty() {
            return Err(CoplotError::EmptyInput {
                what: "complete variables",
            });
        }
        if imputation == Imputation::Forbid {
            for &v in &keep {
                if (0..n).any(|i| self.get(i, v).is_none()) {
                    return Err(CoplotError::Normalization(format!(
                        "variable {:?} has missing cells (imputation forbidden)",
                        self.variables[v]
                    )));
                }
            }
        }

        let mut z = vec![0.0; n * keep.len()];
        for (out_v, &v) in keep.iter().enumerate() {
            let present: Vec<f64> = (0..n).filter_map(|i| self.get(i, v)).collect();
            if present.len() < 2 {
                return Err(CoplotError::Normalization(format!(
                    "variable {:?} has fewer than 2 known values",
                    self.variables[v]
                )));
            }
            if present.iter().any(|c| !c.is_finite()) {
                return Err(CoplotError::NonFinite(format!(
                    "variable {:?} contains NaN or infinite cells",
                    self.variables[v]
                )));
            }
            let mean = describe::mean(&present);
            let sd = describe::std_dev(&present);
            if sd <= 0.0 || sd.is_nan() {
                return Err(CoplotError::Normalization(format!(
                    "variable {:?} is constant; z-scores undefined",
                    self.variables[v]
                )));
            }
            for i in 0..n {
                // Missing cells become z = 0 under ColumnMean.
                let zij = match self.get(i, v) {
                    Some(y) => (y - mean) / sd,
                    None => 0.0,
                };
                z[i * keep.len() + out_v] = zij;
            }
        }

        Ok(NormalizedMatrix {
            observations: self.observations.clone(),
            variables: keep.iter().map(|&v| self.variables[v].clone()).collect(),
            z,
        })
    }
}

/// Stage-1 output: complete z-score matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedMatrix {
    observations: Vec<String>,
    variables: Vec<String>,
    /// Row-major `n x p` z-scores.
    z: Vec<f64>,
}

impl NormalizedMatrix {
    /// Number of observations.
    pub fn n_observations(&self) -> usize {
        self.observations.len()
    }

    /// Number of variables.
    pub fn n_variables(&self) -> usize {
        self.variables.len()
    }

    /// Observation names.
    pub fn observations(&self) -> &[String] {
        &self.observations
    }

    /// Variable names.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// One observation row of z-scores.
    pub fn row(&self, obs: usize) -> &[f64] {
        let p = self.variables.len();
        &self.z[obs * p..(obs + 1) * p]
    }

    /// One variable column of z-scores.
    pub fn column(&self, var: usize) -> Vec<f64> {
        (0..self.observations.len())
            .map(|i| self.z[i * self.variables.len() + var])
            .collect()
    }

    /// A copy keeping only the variables at the given indices, in order.
    ///
    /// Z-scores are per-column, so the subset is exact — no re-normalization
    /// is needed. This is what lets the engine reuse one normalization pass
    /// across variable-elimination rounds and subset searches.
    ///
    /// # Panics
    /// Panics on an out-of-range index — a caller bug, not a data error.
    pub fn select_variables(&self, keep: &[usize]) -> NormalizedMatrix {
        let p = self.variables.len();
        for &v in keep {
            assert!(v < p, "variable index {v} out of range");
        }
        let n = self.observations.len();
        let mut z = Vec::with_capacity(n * keep.len());
        for i in 0..n {
            let row = &self.z[i * p..(i + 1) * p];
            z.extend(keep.iter().map(|&v| row[v]));
        }
        NormalizedMatrix {
            observations: self.observations.clone(),
            variables: keep.iter().map(|&v| self.variables[v].clone()).collect(),
            z,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn normalization_gives_zero_mean_unit_sd() {
        let d = DataMatrix::from_rows(
            names("o", 4),
            names("v", 2),
            &[&[1.0, 100.0], &[2.0, 200.0], &[3.0, 300.0], &[4.0, 400.0]],
        );
        let z = d.normalize(Imputation::Forbid).unwrap();
        for v in 0..2 {
            let col = z.column(v);
            assert!(wl_stats::mean(&col).abs() < 1e-12);
            assert!((wl_stats::std_dev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalization_is_scale_invariant() {
        let rows1: &[&[f64]] = &[&[1.0], &[2.0], &[5.0]];
        let rows2: &[&[f64]] = &[&[10.0], &[20.0], &[50.0]];
        let z1 = DataMatrix::from_rows(names("o", 3), names("v", 1), rows1)
            .normalize(Imputation::Forbid)
            .unwrap();
        let z2 = DataMatrix::from_rows(names("o", 3), names("v", 1), rows2)
            .normalize(Imputation::Forbid)
            .unwrap();
        for i in 0..3 {
            assert!((z1.row(i)[0] - z2.row(i)[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn forbid_rejects_missing() {
        let d = DataMatrix::from_optional_rows(
            names("o", 3),
            names("v", 1),
            &[&[Some(1.0)], &[None], &[Some(3.0)]],
        );
        assert!(d.normalize(Imputation::Forbid).is_err());
        assert!(d.has_missing());
    }

    #[test]
    fn column_mean_imputes_to_zero_z() {
        let d = DataMatrix::from_optional_rows(
            names("o", 3),
            names("v", 1),
            &[&[Some(1.0)], &[None], &[Some(3.0)]],
        );
        let z = d.normalize(Imputation::ColumnMean).unwrap();
        assert!(z.row(1)[0].abs() < 1e-12, "missing cell must map to z=0");
        // Present cells are normalized by the stats of present cells only.
        assert!(z.row(0)[0] < 0.0 && z.row(2)[0] > 0.0);
    }

    #[test]
    fn drop_variables_removes_incomplete_columns() {
        let d = DataMatrix::from_optional_rows(
            names("o", 3),
            vec!["full".into(), "holey".into()],
            &[
                &[Some(1.0), Some(9.0)],
                &[Some(2.0), None],
                &[Some(3.0), Some(7.0)],
            ],
        );
        let z = d.normalize(Imputation::DropVariables).unwrap();
        assert_eq!(z.variables(), &["full".to_string()]);
        assert_eq!(z.n_variables(), 1);
    }

    #[test]
    fn constant_variable_rejected() {
        let d = DataMatrix::from_rows(
            names("o", 3),
            names("v", 1),
            &[&[5.0], &[5.0], &[5.0]],
        );
        let err = d.normalize(Imputation::Forbid).unwrap_err();
        assert!(err.to_string().contains("constant"));
    }

    #[test]
    fn nan_cell_rejected() {
        let d = DataMatrix::from_rows(
            names("o", 3),
            names("v", 1),
            &[&[1.0], &[f64::NAN], &[3.0]],
        );
        let err = d.normalize(Imputation::Forbid).unwrap_err();
        assert!(matches!(err, CoplotError::NonFinite(_)), "{err}");
    }

    #[test]
    fn ragged_rows_are_an_error() {
        let err = DataMatrix::try_from_rows(
            names("o", 2),
            names("v", 2),
            &[&[1.0, 2.0], &[3.0]],
        )
        .unwrap_err();
        assert!(matches!(err, CoplotError::DimensionMismatch { .. }), "{err}");
    }

    #[test]
    fn normalized_select_variables_matches_fresh_normalization() {
        let d = DataMatrix::from_rows(
            names("o", 4),
            vec!["a".into(), "b".into(), "c".into()],
            &[
                &[1.0, 9.0, 2.0],
                &[2.0, 7.0, 8.0],
                &[3.0, 8.0, 5.0],
                &[4.0, 1.0, 3.0],
            ],
        );
        let z = d.normalize(Imputation::Forbid).unwrap();
        let subset = z.select_variables(&[2, 0]);
        let fresh = d
            .select_variables_by_name(&["c", "a"])
            .unwrap()
            .normalize(Imputation::Forbid)
            .unwrap();
        assert_eq!(subset, fresh);
    }

    #[test]
    fn too_few_observations_rejected() {
        let d = DataMatrix::from_rows(names("o", 2), names("v", 1), &[&[1.0], &[2.0]]);
        assert!(d.normalize(Imputation::Forbid).is_err());
    }

    #[test]
    fn select_variables_by_name() {
        let d = DataMatrix::from_rows(
            names("o", 3),
            vec!["a".into(), "b".into(), "c".into()],
            &[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]],
        );
        let s = d.select_variables_by_name(&["c", "a"]).unwrap();
        assert_eq!(s.variables(), &["c".to_string(), "a".to_string()]);
        assert_eq!(s.get(1, 0), Some(6.0));
        assert_eq!(s.get(1, 1), Some(4.0));
        assert!(d.select_variables_by_name(&["zzz"]).is_err());
    }

    #[test]
    fn drop_observations_by_name() {
        let d = DataMatrix::from_rows(
            vec!["x".into(), "y".into(), "z".into()],
            names("v", 1),
            &[&[1.0], &[2.0], &[3.0]],
        );
        let s = d.drop_observations_by_name(&["y"]).unwrap();
        assert_eq!(s.observations(), &["x".to_string(), "z".to_string()]);
        assert_eq!(s.get(1, 0), Some(3.0));
        assert!(d.drop_observations_by_name(&["nope"]).is_err());
    }

    #[test]
    fn row_and_column_views_consistent() {
        let d = DataMatrix::from_rows(
            names("o", 3),
            names("v", 2),
            &[&[1.0, 10.0], &[2.0, 30.0], &[3.0, 20.0]],
        );
        let z = d.normalize(Imputation::Forbid).unwrap();
        for i in 0..3 {
            for v in 0..2 {
                assert_eq!(z.row(i)[v], z.column(v)[i]);
            }
        }
    }
}
