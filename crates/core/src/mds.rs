//! Stage 3: nonmetric multidimensional scaling.
//!
//! The paper uses Guttman's Smallest Space Analysis (SSA) in two dimensions.
//! The modern formulation implemented here produces the same kind of
//! solution — a configuration whose inter-point distances preserve the
//! *order* of the input dissimilarities, scored by Guttman's coefficient of
//! alienation — in any embedding dimension (`MdsConfig::dims`, default 2;
//! the Co-plot pipeline always uses 2 because the arrows live in a plane).
//!
//! The optimizer combines three standard ingredients:
//!
//! * **Classical (Torgerson) scaling** of the squared dissimilarities as the
//!   initial configuration — double-center, eigendecompose, take the top
//!   eigenpairs;
//! * **Monotone regression** (Kruskal's primary approach to ties) of the
//!   current map distances against the dissimilarity order, producing
//!   *disparities* — the best order-preserving targets for the distances;
//! * **Majorization** (the Guttman transform / SMACOF update) to move the
//!   configuration toward the disparities, which monotonically decreases
//!   raw stress.
//!
//! Several random restarts guard against local minima; the returned solution
//! is the one with the smallest coefficient of alienation. Output
//! configurations are centered on the origin with unit RMS radius (MDS
//! solutions are only defined up to similarity transforms anyway).
//!
//! # Determinism and parallel restarts
//!
//! Each restart draws its initial configuration from its **own** ChaCha
//! generator, seeded by [`restart_seed`] from the base seed and the restart
//! index. Restarts therefore do not share RNG state, so they can run on the
//! workspace pool ([`wl_par::par_map_indexed`], [`MdsConfig::threads`] > 1)
//! and still produce results bit-identical to the sequential path: the
//! winning solution only depends on (seed, restart index), never on
//! scheduling order.

use crate::alienation::coefficient_of_alienation;
use crate::dissimilarity::DissimilarityMatrix;
use crate::error::CoplotError;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use wl_linalg::{double_center, jacobi_eigen, Matrix};
use wl_stats::isotonic::isotonic_regression;
use wl_stats::rng::derive_seed;

/// Tuning knobs for the MDS optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdsConfig {
    /// Majorization iterations per start.
    pub max_iterations: usize,
    /// Stop when the relative stress improvement falls below this.
    pub tolerance: f64,
    /// Random restarts in addition to the classical-scaling start.
    pub restarts: usize,
    /// RNG seed for the restarts.
    pub seed: u64,
    /// Embedding dimension (the paper uses 2; higher dimensions resolve
    /// structure two cannot hold — see its section 9 remark that "two
    /// dimensions are just not enough" for too many weakly related
    /// variables).
    pub dims: usize,
    /// Worker threads for the restarts (1 = run them sequentially on the
    /// calling thread). Results are bit-identical for any thread count.
    pub threads: usize,
    /// Run only the half-open window `[lo, hi)` of the `restarts + 1`
    /// starts (`None` = all of them). Start indices are **absolute**: a
    /// windowed run seeds start `i` exactly like the full run does, so
    /// a set of contiguous windows covering `0..restarts + 1` computes
    /// precisely the full run's starts — the primitive `wl-serve`'s
    /// coordinator shards MDS restarts with.
    pub restart_range: Option<(usize, usize)>,
}

impl Default for MdsConfig {
    fn default() -> Self {
        MdsConfig {
            max_iterations: 300,
            tolerance: 1e-9,
            restarts: 8,
            seed: 0x5EED,
            dims: 2,
            threads: 1,
            restart_range: None,
        }
    }
}

/// A converged configuration.
#[derive(Debug, Clone)]
pub struct MdsSolution {
    /// `n x dims` coordinates, centered with unit RMS radius.
    pub coords: Matrix,
    /// Guttman's coefficient of alienation against the input
    /// dissimilarities (lower is better; < 0.15 is "good").
    pub alienation: f64,
    /// Kruskal stress-1 at convergence (diagnostic only).
    pub stress: f64,
    /// Total majorization iterations spent across all starts.
    pub iterations: usize,
    /// Coefficient of alienation achieved by each start, in start order
    /// (index 0 is the classical-scaling start). Collapsed configurations
    /// score infinity.
    pub theta_per_restart: Vec<f64>,
    /// Wall time spent inside the majorization descent (monotone regression
    /// + Guttman transforms), summed across all starts.
    pub majorization_time: Duration,
    /// Wall time spent scoring configurations with the Θ kernel (map
    /// distances + coefficient of alienation), summed across all starts.
    pub theta_time: Duration,
}

/// The seed for one restart's private generator.
///
/// Both the sequential and the parallel restart paths derive per-restart
/// seeds through this single helper (SplitMix64 finalizer via
/// [`wl_stats::rng::derive_seed`]), which is what makes them bit-identical:
/// a restart's initial configuration depends only on `(base, restart)`.
pub fn restart_seed(base: u64, restart: usize) -> u64 {
    derive_seed(base, restart as u64)
}

/// What one start produced, before the best-of selection.
struct StartOutcome {
    coords: Matrix,
    stress: f64,
    iterations: usize,
    theta: f64,
    majorization_time: Duration,
    theta_time: Duration,
}

/// Run nonmetric MDS on a dissimilarity matrix.
///
/// # Errors
/// Returns [`CoplotError::TooFewObservations`] for fewer than 3
/// observations, [`CoplotError::DimensionMismatch`] when the embedding
/// dimension is not in `1..n`, [`CoplotError::NonFinite`] when a
/// dissimilarity is NaN or infinite, and propagates kernel errors from the
/// classical-scaling start.
pub fn nonmetric_mds(
    diss: &DissimilarityMatrix,
    config: &MdsConfig,
) -> Result<MdsSolution, CoplotError> {
    let n = diss.n();
    if n < 3 {
        return Err(CoplotError::TooFewObservations { n, min: 3 });
    }
    let dims = config.dims;
    if !(1..n).contains(&dims) {
        return Err(CoplotError::DimensionMismatch {
            context: format!("nonmetric_mds: embedding dims must be in 1..{n}"),
            expected: n - 1,
            got: dims,
        });
    }
    if diss.pairs().iter().any(|d| !d.is_finite()) {
        return Err(CoplotError::NonFinite(
            "dissimilarity matrix contains NaN or infinite entries".into(),
        ));
    }
    let deltas = diss.pairs().to_vec();

    // Pair index table: pair p connects observations pair_idx[p] = (i, k).
    let pair_idx: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |k| (i, k)))
        .collect();

    let n_starts = config.restarts + 1;
    let (win_lo, win_hi) = match config.restart_range {
        None => (0, n_starts),
        Some((lo, hi)) => {
            if lo >= hi || hi > n_starts {
                return Err(CoplotError::InvalidConfig(format!(
                    "restart_range [{lo}, {hi}) must be a non-empty window of 0..{n_starts}"
                )));
            }
            (lo, hi)
        }
    };
    let window = win_hi - win_lo;
    let _span = wl_obs::span!("mds.restarts");
    wl_obs::counter!("mds.starts", window as u64);
    // Each start's result is a pure function of (seed, start index), so the
    // pool's determinism contract applies and any thread count reproduces
    // the sequential path bit for bit.
    let outcomes = wl_par::par_map_indexed(config.threads, window, |i| {
        run_start(win_lo + i, diss, &deltas, &pair_idx, config)
    });

    // Select the best start exactly as the sequential loop would: walk in
    // start order, keep a strictly better theta (ties keep the earliest).
    let mut best: Option<StartOutcome> = None;
    let mut total_iters = 0;
    let mut majorization_time = Duration::ZERO;
    let mut theta_time = Duration::ZERO;
    let mut theta_per_restart = Vec::with_capacity(window);
    for outcome in outcomes {
        let outcome = outcome?;
        total_iters += outcome.iterations;
        majorization_time += outcome.majorization_time;
        theta_time += outcome.theta_time;
        wl_obs::hist_record!("mds.iterations_per_start", outcome.iterations as u64);
        if outcome.theta.is_infinite() {
            wl_obs::counter!("mds.collapsed_starts", 1u64);
        }
        if outcome.iterations >= config.max_iterations {
            wl_obs::counter!("mds.unconverged_starts", 1u64);
        }
        theta_per_restart.push(outcome.theta);
        let better = match &best {
            None => true,
            Some(b) => outcome.theta < b.theta,
        };
        if better {
            best = Some(outcome);
        }
    }

    let best = best.expect("at least one start runs");
    let mut coords = best.coords;
    normalize_config(&mut coords);
    Ok(MdsSolution {
        coords,
        alienation: best.theta,
        stress: best.stress,
        iterations: total_iters,
        theta_per_restart,
        majorization_time,
        theta_time,
    })
}

/// Run nonmetric MDS refinement from a caller-supplied initial
/// configuration (a **warm start**).
///
/// Unlike [`nonmetric_mds`], this runs a *single* majorization descent from
/// `init` — no classical-scaling start, no random restarts, no RNG at all —
/// so it is thread-invariant by construction and typically converges in a
/// small fraction of the iterations a cold multi-start run spends. The
/// streaming window driver uses it with the previous window's aligned
/// embedding as `init`; callers are expected to compare the returned
/// alienation against their previous frame and fall back to a cold
/// [`nonmetric_mds`] run when the warm solution regresses (the init may sit
/// in the wrong basin after a drift event).
///
/// The output is normalized exactly like [`nonmetric_mds`] (centered, unit
/// RMS radius) and a collapsed configuration scores `alienation = +inf` so
/// the caller's regression check rejects it.
///
/// # Errors
/// Same input validation as [`nonmetric_mds`], plus
/// [`CoplotError::DimensionMismatch`] when `init` is not `n x dims` and
/// [`CoplotError::NonFinite`] when `init` contains NaN or infinite
/// coordinates.
pub fn nonmetric_mds_warm(
    diss: &DissimilarityMatrix,
    config: &MdsConfig,
    init: &Matrix,
) -> Result<MdsSolution, CoplotError> {
    let n = diss.n();
    if n < 3 {
        return Err(CoplotError::TooFewObservations { n, min: 3 });
    }
    let dims = config.dims;
    if !(1..n).contains(&dims) {
        return Err(CoplotError::DimensionMismatch {
            context: format!("nonmetric_mds_warm: embedding dims must be in 1..{n}"),
            expected: n - 1,
            got: dims,
        });
    }
    if init.rows() != n {
        return Err(CoplotError::DimensionMismatch {
            context: "nonmetric_mds_warm: init rows must match observations".into(),
            expected: n,
            got: init.rows(),
        });
    }
    if init.cols() != dims {
        return Err(CoplotError::DimensionMismatch {
            context: "nonmetric_mds_warm: init columns must match dims".into(),
            expected: dims,
            got: init.cols(),
        });
    }
    if diss.pairs().iter().any(|d| !d.is_finite()) {
        return Err(CoplotError::NonFinite(
            "dissimilarity matrix contains NaN or infinite entries".into(),
        ));
    }
    if init.as_slice().iter().any(|x| !x.is_finite()) {
        return Err(CoplotError::NonFinite(
            "warm-start configuration contains NaN or infinite coordinates".into(),
        ));
    }
    let deltas = diss.pairs().to_vec();
    let pair_idx: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |k| (i, k)))
        .collect();

    let _span = wl_obs::span!("mds.warm_start");
    wl_obs::counter!("mds.warm_starts", 1u64);
    let mut coords = init.clone();
    let major_started = Instant::now();
    let (stress, iterations) = refine(&mut coords, &deltas, &pair_idx, n, config);
    let majorization_time = major_started.elapsed();
    wl_obs::hist_record!("mds.iterations_per_start", iterations as u64);

    let theta_started = Instant::now();
    let dists = pair_distances(&coords, &pair_idx);
    let spread = dists.iter().cloned().fold(0.0, f64::max);
    let max_delta = deltas.iter().cloned().fold(0.0, f64::max);
    let collapsed = spread <= 1e-9 && max_delta > 0.0;
    let theta = if collapsed {
        wl_obs::counter!("mds.collapsed_starts", 1u64);
        f64::INFINITY
    } else {
        coefficient_of_alienation(&deltas, &dists)
    };
    let theta_time = theta_started.elapsed();
    if iterations >= config.max_iterations {
        wl_obs::counter!("mds.unconverged_starts", 1u64);
    }
    normalize_config(&mut coords);
    Ok(MdsSolution {
        coords,
        alienation: theta,
        stress,
        iterations,
        theta_per_restart: vec![theta],
        majorization_time,
        theta_time,
    })
}

/// Run one start (classical scaling for start 0, a seeded random
/// configuration otherwise) through the refinement loop and score it.
fn run_start(
    start: usize,
    diss: &DissimilarityMatrix,
    deltas: &[f64],
    pair_idx: &[(usize, usize)],
    config: &MdsConfig,
) -> Result<StartOutcome, CoplotError> {
    let n = diss.n();
    let dims = config.dims;
    let mut coords = if start == 0 {
        classical_init(diss, dims)?
    } else {
        let mut rng = ChaCha12Rng::seed_from_u64(restart_seed(config.seed, start));
        let mut m = Matrix::zeros(n, dims);
        for i in 0..n {
            for c in 0..dims {
                m[(i, c)] = rng.gen_range(-1.0..1.0);
            }
        }
        m
    };

    let major_started = Instant::now();
    let (stress, iterations) = refine(&mut coords, deltas, pair_idx, n, config);
    let majorization_time = major_started.elapsed();

    let theta_started = Instant::now();
    let dists = pair_distances(&coords, pair_idx);
    // A collapsed configuration (all points coincident) has all-equal
    // distances, which scores a vacuous theta of zero; never prefer it
    // over a spread-out solution.
    let spread = dists.iter().cloned().fold(0.0, f64::max);
    let max_delta = deltas.iter().cloned().fold(0.0, f64::max);
    let collapsed = spread <= 1e-9 && max_delta > 0.0;
    let theta = if collapsed {
        f64::INFINITY
    } else {
        coefficient_of_alienation(deltas, &dists)
    };
    let theta_time = theta_started.elapsed();
    Ok(StartOutcome {
        coords,
        stress,
        iterations,
        theta,
        majorization_time,
        theta_time,
    })
}

/// Classical (Torgerson) scaling of the dissimilarities into `dims`
/// dimensions.
fn classical_init(diss: &DissimilarityMatrix, dims: usize) -> Result<Matrix, CoplotError> {
    let n = diss.n();
    let mut d2 = Matrix::zeros(n, n);
    for i in 0..n {
        for k in 0..n {
            let d = diss.get(i, k);
            d2[(i, k)] = d * d;
        }
    }
    let b = double_center(&d2)?;
    let eig = jacobi_eigen(&b, 1e-12, 100)?;
    let mut coords = Matrix::zeros(n, dims);
    for j in 0..dims.min(eig.values.len()) {
        let scale = eig.values[j].max(0.0).sqrt();
        for i in 0..n {
            coords[(i, j)] = eig.vectors[(i, j)] * scale;
        }
    }
    Ok(coords)
}

/// Alternate monotone regression and Guttman-transform updates until the
/// stress stops improving. Returns (final stress-1, iterations used).
///
/// The loop body performs exactly the same float operations, in the same
/// order, as the original allocate-per-iteration version — every buffer is
/// hoisted out of the loop and refilled, never reassociated — so the
/// refined configuration is bit-identical while the allocator disappears
/// from the profile. The per-iteration sort is also incremental: pairs are
/// sorted by dissimilarity once up front, and only ties (groups with equal
/// delta) need re-ranking by the fresh distances each iteration.
fn refine(
    coords: &mut Matrix,
    deltas: &[f64],
    pair_idx: &[(usize, usize)],
    n: usize,
    config: &MdsConfig,
) -> (f64, usize) {
    let dims = coords.cols();
    let p = deltas.len();
    let mut last_stress = f64::INFINITY;
    let mut iters = 0;

    // Kruskal's primary approach orders pairs by (delta, distance) so tied
    // dissimilarities don't constrain each other. The delta component never
    // changes across iterations: sort by it once (stably, so tied deltas
    // stay index-ascending) and remember the tie groups. Re-sorting a
    // group by (distance, index) each iteration reproduces the full stable
    // (delta, distance) sort exactly; distinct deltas cost nothing.
    // Deltas are validated finite at the entry point and distances of a
    // finite configuration are finite, so the comparisons are total.
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by(|&a, &b| {
        deltas[a]
            .partial_cmp(&deltas[b])
            .expect("finite dissimilarities")
    });
    let mut tie_groups: Vec<(usize, usize)> = Vec::new();
    let mut g0 = 0;
    while g0 < p {
        let mut g1 = g0 + 1;
        while g1 < p && deltas[order[g1]] == deltas[order[g0]] {
            g1 += 1;
        }
        if g1 - g0 > 1 {
            tie_groups.push((g0, g1));
        }
        g0 = g1;
    }

    let mut dists = Vec::with_capacity(p);
    let mut sorted_d = vec![0.0; p];
    let mut disparities = vec![0.0; p];
    let mut ratios = vec![0.0; p];
    let mut row_ratio_sum = vec![0.0; n];
    let mut cross = Matrix::zeros(n, dims);
    let mut updated = Matrix::zeros(n, dims);

    for it in 0..config.max_iterations {
        iters = it + 1;
        pair_distances_into(coords, pair_idx, &mut dists);

        for &(g0, g1) in &tie_groups {
            order[g0..g1].sort_unstable_by(|&a, &b| {
                dists[a]
                    .partial_cmp(&dists[b])
                    .expect("finite distances")
                    .then(a.cmp(&b))
            });
        }
        for (pos, &i) in order.iter().enumerate() {
            sorted_d[pos] = dists[i];
        }
        let fitted = isotonic_regression(&sorted_d, None);
        for (pos, &i) in order.iter().enumerate() {
            disparities[i] = fitted[pos];
        }

        // Stress-1 for convergence monitoring.
        let num: f64 = dists
            .iter()
            .zip(&disparities)
            .map(|(d, dh)| (d - dh) * (d - dh))
            .sum();
        let den: f64 = dists.iter().map(|d| d * d).sum();
        let stress = if den > 0.0 { (num / den).sqrt() } else { 0.0 };

        if last_stress.is_finite() && (last_stress - stress).abs() <= config.tolerance {
            last_stress = stress;
            break;
        }
        last_stress = stress;

        // Guttman transform: X <- (1/n) B(X) X where B has off-diagonal
        // entries b_ik = -dhat_ik / d_ik and diagonal b_ii = sum_k dhat/d.
        // The ratios are independent per pair, so compute them in one flat
        // pass before the scatter; then accumulate sum_k ratio_ik (into
        // `row_ratio_sum`) and sum_k ratio_ik * x_k (into `cross`), and
        // apply per row.
        for (r, (&d, &dh)) in ratios.iter_mut().zip(dists.iter().zip(&disparities)) {
            *r = if d > 1e-12 { dh / d } else { 0.0 };
        }
        row_ratio_sum.fill(0.0);
        cross.as_mut_slice().fill(0.0);
        for (pidx, &(i, k)) in pair_idx.iter().enumerate() {
            let ratio = ratios[pidx];
            row_ratio_sum[i] += ratio;
            row_ratio_sum[k] += ratio;
            for c in 0..dims {
                cross[(i, c)] += ratio * coords[(k, c)];
                cross[(k, c)] += ratio * coords[(i, c)];
            }
        }
        for i in 0..n {
            for c in 0..dims {
                updated[(i, c)] =
                    (row_ratio_sum[i] * coords[(i, c)] - cross[(i, c)]) / n as f64;
            }
        }
        // `updated` is fully overwritten next iteration, so the old coords
        // it now holds are just scratch.
        std::mem::swap(coords, &mut updated);
    }
    (last_stress, iters)
}

/// Euclidean distances for every pair in `pair_idx` order.
fn pair_distances(coords: &Matrix, pair_idx: &[(usize, usize)]) -> Vec<f64> {
    let mut dists = Vec::with_capacity(pair_idx.len());
    pair_distances_into(coords, pair_idx, &mut dists);
    dists
}

/// [`pair_distances`] into a reused buffer. The planar (dims == 2) case —
/// the Co-plot pipeline's only case — runs four pairs per step with
/// independent accumulation chains; `0.0 + x == x` for the non-negative
/// squares, so each distance is bit-identical to the generic loop.
fn pair_distances_into(coords: &Matrix, pair_idx: &[(usize, usize)], out: &mut Vec<f64>) {
    let dims = coords.cols();
    out.clear();
    if dims == 2 {
        let xs = coords.as_slice();
        let mut chunks = pair_idx.chunks_exact(4);
        for quad in &mut chunks {
            let mut block = [0.0f64; 4];
            for (b, &(i, k)) in block.iter_mut().zip(quad) {
                let dx = xs[2 * i] - xs[2 * k];
                let dy = xs[2 * i + 1] - xs[2 * k + 1];
                *b = (dx * dx + dy * dy).sqrt();
            }
            out.extend_from_slice(&block);
        }
        for &(i, k) in chunks.remainder() {
            let dx = xs[2 * i] - xs[2 * k];
            let dy = xs[2 * i + 1] - xs[2 * k + 1];
            out.push((dx * dx + dy * dy).sqrt());
        }
        return;
    }
    out.extend(pair_idx.iter().map(|&(i, k)| {
        let mut s = 0.0;
        for c in 0..dims {
            let d = coords[(i, c)] - coords[(k, c)];
            s += d * d;
        }
        s.sqrt()
    }));
}

/// Center at the origin and scale to unit RMS radius.
fn normalize_config(coords: &mut Matrix) {
    let n = coords.rows();
    let dims = coords.cols();
    if n == 0 {
        return;
    }
    for c in 0..dims {
        let mean: f64 = (0..n).map(|i| coords[(i, c)]).sum::<f64>() / n as f64;
        for i in 0..n {
            coords[(i, c)] -= mean;
        }
    }
    let mut r2 = 0.0;
    for i in 0..n {
        for c in 0..dims {
            r2 += coords[(i, c)].powi(2);
        }
    }
    let rms = (r2 / n as f64).sqrt();
    if rms > 0.0 {
        for i in 0..n {
            for c in 0..dims {
                coords[(i, c)] /= rms;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wl_linalg::procrustes_align;

    /// Dissimilarity matrix of a planted 2-D configuration (Euclidean).
    fn planted(points: &[(f64, f64)]) -> DissimilarityMatrix {
        let n = points.len();
        let mut full = vec![vec![0.0; n]; n];
        for i in 0..n {
            for k in 0..n {
                let dx = points[i].0 - points[k].0;
                let dy = points[i].1 - points[k].1;
                full[i][k] = (dx * dx + dy * dy).sqrt();
            }
        }
        DissimilarityMatrix::from_full(&full).unwrap()
    }

    #[test]
    fn recovers_planted_configuration() {
        let pts = [
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.3),
            (0.5, 1.5),
            (1.7, 1.2),
            (0.1, 2.4),
        ];
        let diss = planted(&pts);
        let sol = nonmetric_mds(&diss, &MdsConfig::default()).unwrap();
        assert!(
            sol.alienation < 0.02,
            "planted config should embed nearly perfectly, theta = {}",
            sol.alienation
        );
        // Procrustes-align to the truth: residual should be tiny.
        let truth = Matrix::from_rows(
            &pts.iter().map(|&(x, y)| vec![x, y]).collect::<Vec<_>>(),
        );
        let fit = procrustes_align(&truth, &sol.coords);
        // Truth coordinates are O(1), so rmsd below 0.15 means shapes match.
        assert!(fit.rmsd < 0.15, "rmsd = {}", fit.rmsd);
    }

    #[test]
    fn output_is_normalized() {
        let pts = [(0.0, 0.0), (5.0, 0.0), (0.0, 7.0), (4.0, 4.0)];
        let sol = nonmetric_mds(&planted(&pts), &MdsConfig::default()).unwrap();
        let n = sol.coords.rows();
        let (mut cx, mut cy, mut r2) = (0.0, 0.0, 0.0);
        for i in 0..n {
            cx += sol.coords[(i, 0)];
            cy += sol.coords[(i, 1)];
            r2 += sol.coords[(i, 0)].powi(2) + sol.coords[(i, 1)].powi(2);
        }
        assert!(cx.abs() < 1e-9 && cy.abs() < 1e-9, "centered");
        assert!((r2 / n as f64 - 1.0).abs() < 1e-9, "unit RMS radius");
    }

    #[test]
    fn monotone_transform_of_distances_still_perfect() {
        // Nonmetric MDS should be invariant to monotone distortion of the
        // dissimilarities.
        let pts = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.2, 1.1), (2.0, 0.5)];
        let n = pts.len();
        let base = planted(&pts);
        let mut warped = vec![vec![0.0; n]; n];
        for (i, row) in warped.iter_mut().enumerate() {
            for (k, cell) in row.iter_mut().enumerate() {
                let d = base.get(i, k);
                *cell = d * d * d + d; // strictly monotone
            }
        }
        let sol = nonmetric_mds(
            &DissimilarityMatrix::from_full(&warped).unwrap(),
            &MdsConfig::default(),
        )
        .unwrap();
        assert!(sol.alienation < 0.05, "theta = {}", sol.alienation);
    }

    #[test]
    fn equilateral_triangle() {
        let full = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let sol = nonmetric_mds(
            &DissimilarityMatrix::from_full(&full).unwrap(),
            &MdsConfig::default(),
        )
        .unwrap();
        // All pairwise map distances equal.
        let d01 = dist(&sol.coords, 0, 1);
        let d02 = dist(&sol.coords, 0, 2);
        let d12 = dist(&sol.coords, 1, 2);
        assert!((d01 - d02).abs() < 1e-6 && (d02 - d12).abs() < 1e-6);
        assert!(sol.alienation < 1e-6);
    }

    #[test]
    fn four_dim_structure_cannot_fully_embed() {
        // Simplex of 5 equidistant points needs 4 dimensions; in 2-D some
        // alienation remains... but weak monotonicity tolerates ties, so
        // theta stays small. Check it at least runs and stays bounded.
        let n = 5;
        let mut full = vec![vec![1.0; n]; n];
        for (i, row) in full.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        let sol = nonmetric_mds(
            &DissimilarityMatrix::from_full(&full).unwrap(),
            &MdsConfig::default(),
        )
        .unwrap();
        assert!((0.0..=1.0).contains(&sol.alienation));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = [(0.0, 0.0), (1.0, 0.2), (0.3, 1.0), (1.5, 1.5)];
        let diss = planted(&pts);
        let a = nonmetric_mds(&diss, &MdsConfig::default()).unwrap();
        let b = nonmetric_mds(&diss, &MdsConfig::default()).unwrap();
        assert_eq!(a.coords.as_slice(), b.coords.as_slice());
        assert_eq!(a.alienation, b.alienation);
    }

    #[test]
    fn one_dimensional_embedding_of_a_line() {
        // Collinear data embeds perfectly in 1-D.
        let pts = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.5, 0.0), (5.0, 0.0)];
        let diss = planted(&pts);
        let sol = nonmetric_mds(
            &diss,
            &MdsConfig {
                dims: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sol.coords.cols(), 1);
        assert!(sol.alienation < 1e-6, "theta = {}", sol.alienation);
    }

    #[test]
    fn extra_dimensions_never_hurt() {
        // A 4-point simplex (all pairwise distances equal) needs 3
        // dimensions; the 3-D fit must be at least as good as the 2-D one.
        let n = 4;
        let mut full = vec![vec![1.0; n]; n];
        for (i, row) in full.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        // Break the ties slightly so 2-D genuinely struggles.
        full[0][1] = 1.05;
        full[1][0] = 1.05;
        full[2][3] = 0.95;
        full[3][2] = 0.95;
        let diss = DissimilarityMatrix::from_full(&full).unwrap();
        let d2 = nonmetric_mds(&diss, &MdsConfig { dims: 2, ..Default::default() }).unwrap();
        let d3 = nonmetric_mds(&diss, &MdsConfig { dims: 3, ..Default::default() }).unwrap();
        assert_eq!(d3.coords.cols(), 3);
        assert!(d3.alienation <= d2.alienation + 1e-9);
        assert!(d3.alienation < 1e-6, "3-D fit should be exact: {}", d3.alienation);
    }

    #[test]
    fn dims_out_of_range_is_an_error() {
        let full = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let diss = DissimilarityMatrix::from_full(&full).unwrap();
        for dims in [0, 3, 10] {
            let err = nonmetric_mds(&diss, &MdsConfig { dims, ..Default::default() })
                .unwrap_err();
            assert!(
                matches!(err, CoplotError::DimensionMismatch { got, .. } if got == dims),
                "dims = {dims}: {err}"
            );
        }
    }

    #[test]
    fn too_few_observations_is_an_error() {
        let full = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let err = nonmetric_mds(
            &DissimilarityMatrix::from_full(&full).unwrap(),
            &MdsConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, CoplotError::TooFewObservations { n: 2, min: 3 });
    }

    #[test]
    fn nan_dissimilarity_is_an_error() {
        let pts = [(0.0f64, 0.0f64), (1.0, 0.2), (0.3, 1.0), (1.5, 1.5)];
        let mut full = vec![vec![0.0; 4]; 4];
        for i in 0..4 {
            for k in 0..4 {
                let dx = pts[i].0 - pts[k].0;
                let dy = pts[i].1 - pts[k].1;
                full[i][k] = (dx * dx + dy * dy).sqrt();
            }
        }
        let mut diss = DissimilarityMatrix::from_full(&full).unwrap();
        diss.poison_for_tests(0, f64::NAN);
        let err = nonmetric_mds(&diss, &MdsConfig::default()).unwrap_err();
        assert!(matches!(err, CoplotError::NonFinite(_)), "{err}");
    }

    #[test]
    fn parallel_restarts_bit_identical_to_sequential() {
        // The regression test for the parallel path: any thread count must
        // reproduce the sequential result bit for bit, for any restart
        // count (0 = classical start only, 1 = one random start, 8 =
        // default-sized pool).
        let pts = [
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.3),
            (0.5, 1.5),
            (1.7, 1.2),
            (0.1, 2.4),
        ];
        let diss = planted(&pts);
        for restarts in [0usize, 1, 8] {
            let seq = nonmetric_mds(
                &diss,
                &MdsConfig { restarts, threads: 1, ..Default::default() },
            )
            .unwrap();
            for threads in [2usize, 4, 8] {
                let par = nonmetric_mds(
                    &diss,
                    &MdsConfig { restarts, threads, ..Default::default() },
                )
                .unwrap();
                assert_eq!(
                    seq.coords.as_slice(),
                    par.coords.as_slice(),
                    "restarts {restarts}, threads {threads}"
                );
                assert_eq!(seq.alienation.to_bits(), par.alienation.to_bits());
                assert_eq!(seq.stress.to_bits(), par.stress.to_bits());
                assert_eq!(seq.theta_per_restart, par.theta_per_restart);
                assert_eq!(seq.iterations, par.iterations);
            }
        }
    }

    #[test]
    fn restart_windows_reassemble_to_the_full_run() {
        // The distribution contract: contiguous windows covering the
        // start space, each run independently, select (in window order,
        // strictly-better keeps) exactly the full run's winner — bit for
        // bit, for any partitioning.
        let pts = [
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.3),
            (0.5, 1.5),
            (1.7, 1.2),
            (0.1, 2.4),
        ];
        let diss = planted(&pts);
        let full = nonmetric_mds(&diss, &MdsConfig::default()).unwrap();
        let n_starts = MdsConfig::default().restarts + 1;
        for parts in [1usize, 2, 3, 4, 9] {
            let chunk = n_starts.div_ceil(parts);
            let mut best: Option<MdsSolution> = None;
            let mut thetas = Vec::new();
            let mut lo = 0;
            while lo < n_starts {
                let hi = (lo + chunk).min(n_starts);
                let sol = nonmetric_mds(
                    &diss,
                    &MdsConfig {
                        restart_range: Some((lo, hi)),
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(sol.theta_per_restart.len(), hi - lo);
                thetas.extend_from_slice(&sol.theta_per_restart);
                let better = match &best {
                    None => true,
                    Some(b) => sol.alienation < b.alienation,
                };
                if better {
                    best = Some(sol);
                }
                lo = hi;
            }
            let best = best.unwrap();
            assert_eq!(
                best.coords.as_slice(),
                full.coords.as_slice(),
                "{parts} windows"
            );
            assert_eq!(best.alienation.to_bits(), full.alienation.to_bits());
            assert_eq!(thetas, full.theta_per_restart);
        }
    }

    #[test]
    fn bad_restart_window_is_an_error() {
        let pts = [(0.0, 0.0), (1.0, 0.2), (0.3, 1.0), (1.5, 1.5)];
        let diss = planted(&pts);
        for range in [(3, 3), (5, 2), (0, 10), (9, 12)] {
            let err = nonmetric_mds(
                &diss,
                &MdsConfig {
                    restart_range: Some(range),
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, CoplotError::InvalidConfig(_)),
                "{range:?}: {err}"
            );
        }
    }

    #[test]
    fn theta_per_restart_has_one_entry_per_start() {
        let pts = [(0.0, 0.0), (1.0, 0.2), (0.3, 1.0), (1.5, 1.5)];
        let sol = nonmetric_mds(
            &planted(&pts),
            &MdsConfig { restarts: 5, ..Default::default() },
        )
        .unwrap();
        assert_eq!(sol.theta_per_restart.len(), 6);
        // The winner is the minimum of the per-start thetas.
        let min = sol
            .theta_per_restart
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min, sol.alienation);
    }

    #[test]
    fn restart_seeds_are_distinct_and_stable() {
        // Shared helper between the sequential and parallel paths: stable
        // in (base, index) and collision-free across a realistic pool.
        let seeds: Vec<u64> = (0..64).map(|i| restart_seed(0x5EED, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
        assert_eq!(restart_seed(7, 3), restart_seed(7, 3));
        assert_ne!(restart_seed(7, 3), restart_seed(8, 3));
    }

    #[test]
    fn warm_start_from_converged_solution_is_cheap_and_good() {
        let pts = [
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.3),
            (0.5, 1.5),
            (1.7, 1.2),
            (0.1, 2.4),
        ];
        let diss = planted(&pts);
        let config = MdsConfig::default();
        let cold = nonmetric_mds(&diss, &config).unwrap();
        let warm = nonmetric_mds_warm(&diss, &config, &cold.coords).unwrap();
        // Restarting from the converged config must not lose quality and
        // must spend far fewer iterations than the multi-start run.
        assert!(warm.alienation <= cold.alienation + 1e-9);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        assert_eq!(warm.theta_per_restart.len(), 1);
    }

    #[test]
    fn warm_start_is_deterministic() {
        let pts = [(0.0, 0.0), (1.0, 0.2), (0.3, 1.0), (1.5, 1.5)];
        let diss = planted(&pts);
        let config = MdsConfig::default();
        let init = nonmetric_mds(&diss, &config).unwrap().coords;
        let a = nonmetric_mds_warm(&diss, &config, &init).unwrap();
        let b = nonmetric_mds_warm(&diss, &config, &init).unwrap();
        assert_eq!(a.coords.as_slice(), b.coords.as_slice());
        assert_eq!(a.alienation.to_bits(), b.alienation.to_bits());
        // Thread count lives in MdsConfig but the warm path never fans out;
        // any value must reproduce the same bits.
        let c = nonmetric_mds_warm(&diss, &MdsConfig { threads: 8, ..config }, &init).unwrap();
        assert_eq!(a.coords.as_slice(), c.coords.as_slice());
    }

    #[test]
    fn warm_start_output_is_normalized() {
        let pts = [(0.0, 0.0), (5.0, 0.0), (0.0, 7.0), (4.0, 4.0)];
        let diss = planted(&pts);
        let init = nonmetric_mds(&diss, &MdsConfig::default()).unwrap().coords;
        let sol = nonmetric_mds_warm(&diss, &MdsConfig::default(), &init).unwrap();
        let n = sol.coords.rows();
        let (mut cx, mut cy, mut r2) = (0.0, 0.0, 0.0);
        for i in 0..n {
            cx += sol.coords[(i, 0)];
            cy += sol.coords[(i, 1)];
            r2 += sol.coords[(i, 0)].powi(2) + sol.coords[(i, 1)].powi(2);
        }
        assert!(cx.abs() < 1e-9 && cy.abs() < 1e-9);
        assert!((r2 / n as f64 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn warm_start_rejects_bad_init() {
        let pts = [(0.0, 0.0), (1.0, 0.2), (0.3, 1.0), (1.5, 1.5)];
        let diss = planted(&pts);
        let config = MdsConfig::default();
        // Wrong row count.
        let err = nonmetric_mds_warm(&diss, &config, &Matrix::zeros(3, 2)).unwrap_err();
        assert!(matches!(err, CoplotError::DimensionMismatch { got: 3, .. }), "{err}");
        // Wrong column count.
        let err = nonmetric_mds_warm(&diss, &config, &Matrix::zeros(4, 3)).unwrap_err();
        assert!(matches!(err, CoplotError::DimensionMismatch { got: 3, .. }), "{err}");
        // Non-finite coordinates.
        let mut init = Matrix::zeros(4, 2);
        init[(1, 0)] = f64::NAN;
        let err = nonmetric_mds_warm(&diss, &config, &init).unwrap_err();
        assert!(matches!(err, CoplotError::NonFinite(_)), "{err}");
    }

    #[test]
    fn warm_start_from_collapsed_init_reports_infinite_theta() {
        // An all-zeros init stays collapsed under the Guttman transform
        // (every pair distance is 0, every ratio is 0), so the warm path
        // must flag it rather than report a vacuous perfect fit.
        let pts = [(0.0, 0.0), (1.0, 0.2), (0.3, 1.0), (1.5, 1.5)];
        let diss = planted(&pts);
        let sol = nonmetric_mds_warm(&diss, &MdsConfig::default(), &Matrix::zeros(4, 2)).unwrap();
        assert!(sol.alienation.is_infinite());
    }

    fn dist(m: &Matrix, i: usize, k: usize) -> f64 {
        let dx = m[(i, 0)] - m[(k, 0)];
        let dy = m[(i, 1)] - m[(k, 1)];
        (dx * dx + dy * dy).sqrt()
    }
}
