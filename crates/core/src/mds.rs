//! Stage 3: nonmetric multidimensional scaling.
//!
//! The paper uses Guttman's Smallest Space Analysis (SSA) in two dimensions.
//! The modern formulation implemented here produces the same kind of
//! solution — a configuration whose inter-point distances preserve the
//! *order* of the input dissimilarities, scored by Guttman's coefficient of
//! alienation — in any embedding dimension (`MdsConfig::dims`, default 2;
//! the Co-plot pipeline always uses 2 because the arrows live in a plane).
//!
//! The optimizer combines three standard ingredients:
//!
//! * **Classical (Torgerson) scaling** of the squared dissimilarities as the
//!   initial configuration — double-center, eigendecompose, take the top
//!   eigenpairs;
//! * **Monotone regression** (Kruskal's primary approach to ties) of the
//!   current map distances against the dissimilarity order, producing
//!   *disparities* — the best order-preserving targets for the distances;
//! * **Majorization** (the Guttman transform / SMACOF update) to move the
//!   configuration toward the disparities, which monotonically decreases
//!   raw stress.
//!
//! Several random restarts guard against local minima; the returned solution
//! is the one with the smallest coefficient of alienation. Output
//! configurations are centered on the origin with unit RMS radius (MDS
//! solutions are only defined up to similarity transforms anyway).

use crate::alienation::coefficient_of_alienation;
use crate::dissimilarity::DissimilarityMatrix;
use wl_linalg::{double_center, jacobi_eigen, Matrix};
use wl_stats::isotonic::isotonic_regression;
use wl_stats::rng::seeded_rng;
use rand::Rng;

/// Tuning knobs for the MDS optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdsConfig {
    /// Majorization iterations per start.
    pub max_iterations: usize,
    /// Stop when the relative stress improvement falls below this.
    pub tolerance: f64,
    /// Random restarts in addition to the classical-scaling start.
    pub restarts: usize,
    /// RNG seed for the restarts.
    pub seed: u64,
    /// Embedding dimension (the paper uses 2; higher dimensions resolve
    /// structure two cannot hold — see its section 9 remark that "two
    /// dimensions are just not enough" for too many weakly related
    /// variables).
    pub dims: usize,
}

impl Default for MdsConfig {
    fn default() -> Self {
        MdsConfig {
            max_iterations: 300,
            tolerance: 1e-9,
            restarts: 8,
            seed: 0x5EED,
            dims: 2,
        }
    }
}

/// A converged configuration.
#[derive(Debug, Clone)]
pub struct MdsSolution {
    /// `n x dims` coordinates, centered with unit RMS radius.
    pub coords: Matrix,
    /// Guttman's coefficient of alienation against the input
    /// dissimilarities (lower is better; < 0.15 is "good").
    pub alienation: f64,
    /// Kruskal stress-1 at convergence (diagnostic only).
    pub stress: f64,
    /// Total majorization iterations spent across all starts.
    pub iterations: usize,
}

/// Run nonmetric MDS on a dissimilarity matrix.
///
/// # Panics
/// Panics for fewer than 3 observations.
pub fn nonmetric_mds(diss: &DissimilarityMatrix, config: &MdsConfig) -> MdsSolution {
    let n = diss.n();
    assert!(n >= 3, "MDS needs at least 3 observations, got {n}");
    let dims = config.dims;
    assert!((1..n).contains(&dims), "dims {dims} out of 1..{n}");
    let deltas = diss.pairs().to_vec();

    // Pair index table: pair p connects observations pair_idx[p] = (i, k).
    let pair_idx: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |k| (i, k)))
        .collect();

    let mut rng = seeded_rng(config.seed);
    let mut best: Option<MdsSolution> = None;
    let mut total_iters = 0;

    for start in 0..=config.restarts {
        let mut coords = if start == 0 {
            classical_init(diss, dims)
        } else {
            let mut m = Matrix::zeros(n, dims);
            for i in 0..n {
                for c in 0..dims {
                    m[(i, c)] = rng.gen_range(-1.0..1.0);
                }
            }
            m
        };

        let (stress, iters) = refine(&mut coords, &deltas, &pair_idx, n, config);
        total_iters += iters;

        let dists = pair_distances(&coords, &pair_idx);
        // A collapsed configuration (all points coincident) has all-equal
        // distances, which scores a vacuous theta of zero; never prefer it
        // over a spread-out solution.
        let spread = dists.iter().cloned().fold(0.0, f64::max);
        let max_delta = deltas.iter().cloned().fold(0.0, f64::max);
        let collapsed = spread <= 1e-9 && max_delta > 0.0;
        let theta = coefficient_of_alienation(&deltas, &dists);
        let candidate = MdsSolution {
            coords,
            alienation: if collapsed { f64::INFINITY } else { theta },
            stress,
            iterations: 0,
        };
        let better = match &best {
            None => true,
            Some(b) => candidate.alienation < b.alienation,
        };
        if better {
            best = Some(candidate);
        }
    }

    let mut solution = best.expect("at least one start runs");
    normalize_config(&mut solution.coords);
    solution.iterations = total_iters;
    solution
}

/// Classical (Torgerson) scaling of the dissimilarities into `dims`
/// dimensions.
fn classical_init(diss: &DissimilarityMatrix, dims: usize) -> Matrix {
    let n = diss.n();
    let mut d2 = Matrix::zeros(n, n);
    for i in 0..n {
        for k in 0..n {
            let d = diss.get(i, k);
            d2[(i, k)] = d * d;
        }
    }
    let b = double_center(&d2);
    let eig = jacobi_eigen(&b, 1e-12, 100);
    let mut coords = Matrix::zeros(n, dims);
    for j in 0..dims.min(eig.values.len()) {
        let scale = eig.values[j].max(0.0).sqrt();
        for i in 0..n {
            coords[(i, j)] = eig.vectors[(i, j)] * scale;
        }
    }
    coords
}

/// Alternate monotone regression and Guttman-transform updates until the
/// stress stops improving. Returns (final stress-1, iterations used).
fn refine(
    coords: &mut Matrix,
    deltas: &[f64],
    pair_idx: &[(usize, usize)],
    n: usize,
    config: &MdsConfig,
) -> (f64, usize) {
    let dims = coords.cols();
    let p = deltas.len();
    let mut last_stress = f64::INFINITY;
    let mut iters = 0;

    for it in 0..config.max_iterations {
        iters = it + 1;
        let dists = pair_distances(coords, pair_idx);

        // Kruskal's primary approach: order pairs by (delta, distance) so
        // tied dissimilarities don't constrain each other.
        let mut order: Vec<usize> = (0..p).collect();
        order.sort_by(|&a, &b| {
            deltas[a]
                .partial_cmp(&deltas[b])
                .unwrap()
                .then(dists[a].partial_cmp(&dists[b]).unwrap())
        });
        let sorted_d: Vec<f64> = order.iter().map(|&i| dists[i]).collect();
        let fitted = isotonic_regression(&sorted_d, None);
        let mut disparities = vec![0.0; p];
        for (pos, &i) in order.iter().enumerate() {
            disparities[i] = fitted[pos];
        }

        // Stress-1 for convergence monitoring.
        let num: f64 = dists
            .iter()
            .zip(&disparities)
            .map(|(d, dh)| (d - dh) * (d - dh))
            .sum();
        let den: f64 = dists.iter().map(|d| d * d).sum();
        let stress = if den > 0.0 { (num / den).sqrt() } else { 0.0 };

        if last_stress.is_finite() && (last_stress - stress).abs() <= config.tolerance {
            last_stress = stress;
            break;
        }
        last_stress = stress;

        // Guttman transform: X <- (1/n) B(X) X where B has off-diagonal
        // entries b_ik = -dhat_ik / d_ik and diagonal b_ii = sum_k dhat/d.
        // Accumulate sum_k ratio_ik (into `row_ratio_sum`) and
        // sum_k ratio_ik * x_k (into `cross`), then apply per row.
        let mut row_ratio_sum = vec![0.0; n];
        let mut cross = Matrix::zeros(n, dims);
        for (pidx, &(i, k)) in pair_idx.iter().enumerate() {
            let d = dists[pidx];
            let ratio = if d > 1e-12 { disparities[pidx] / d } else { 0.0 };
            row_ratio_sum[i] += ratio;
            row_ratio_sum[k] += ratio;
            for c in 0..dims {
                cross[(i, c)] += ratio * coords[(k, c)];
                cross[(k, c)] += ratio * coords[(i, c)];
            }
        }
        let mut updated = Matrix::zeros(n, dims);
        for i in 0..n {
            for c in 0..dims {
                updated[(i, c)] =
                    (row_ratio_sum[i] * coords[(i, c)] - cross[(i, c)]) / n as f64;
            }
        }
        *coords = updated;
    }
    (last_stress, iters)
}

/// Euclidean distances for every pair in `pair_idx` order.
fn pair_distances(coords: &Matrix, pair_idx: &[(usize, usize)]) -> Vec<f64> {
    let dims = coords.cols();
    pair_idx
        .iter()
        .map(|&(i, k)| {
            let mut s = 0.0;
            for c in 0..dims {
                let d = coords[(i, c)] - coords[(k, c)];
                s += d * d;
            }
            s.sqrt()
        })
        .collect()
}

/// Center at the origin and scale to unit RMS radius.
fn normalize_config(coords: &mut Matrix) {
    let n = coords.rows();
    let dims = coords.cols();
    if n == 0 {
        return;
    }
    for c in 0..dims {
        let mean: f64 = (0..n).map(|i| coords[(i, c)]).sum::<f64>() / n as f64;
        for i in 0..n {
            coords[(i, c)] -= mean;
        }
    }
    let mut r2 = 0.0;
    for i in 0..n {
        for c in 0..dims {
            r2 += coords[(i, c)].powi(2);
        }
    }
    let rms = (r2 / n as f64).sqrt();
    if rms > 0.0 {
        for i in 0..n {
            for c in 0..dims {
                coords[(i, c)] /= rms;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wl_linalg::procrustes_align;

    /// Dissimilarity matrix of a planted 2-D configuration (Euclidean).
    fn planted(points: &[(f64, f64)]) -> DissimilarityMatrix {
        let n = points.len();
        let mut full = vec![vec![0.0; n]; n];
        for i in 0..n {
            for k in 0..n {
                let dx = points[i].0 - points[k].0;
                let dy = points[i].1 - points[k].1;
                full[i][k] = (dx * dx + dy * dy).sqrt();
            }
        }
        DissimilarityMatrix::from_full(&full)
    }

    #[test]
    fn recovers_planted_configuration() {
        let pts = [
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.3),
            (0.5, 1.5),
            (1.7, 1.2),
            (0.1, 2.4),
        ];
        let diss = planted(&pts);
        let sol = nonmetric_mds(&diss, &MdsConfig::default());
        assert!(
            sol.alienation < 0.02,
            "planted config should embed nearly perfectly, theta = {}",
            sol.alienation
        );
        // Procrustes-align to the truth: residual should be tiny.
        let truth = Matrix::from_rows(
            &pts.iter().map(|&(x, y)| vec![x, y]).collect::<Vec<_>>(),
        );
        let fit = procrustes_align(&truth, &sol.coords);
        // Truth coordinates are O(1), so rmsd below 0.15 means shapes match.
        assert!(fit.rmsd < 0.15, "rmsd = {}", fit.rmsd);
    }

    #[test]
    fn output_is_normalized() {
        let pts = [(0.0, 0.0), (5.0, 0.0), (0.0, 7.0), (4.0, 4.0)];
        let sol = nonmetric_mds(&planted(&pts), &MdsConfig::default());
        let n = sol.coords.rows();
        let (mut cx, mut cy, mut r2) = (0.0, 0.0, 0.0);
        for i in 0..n {
            cx += sol.coords[(i, 0)];
            cy += sol.coords[(i, 1)];
            r2 += sol.coords[(i, 0)].powi(2) + sol.coords[(i, 1)].powi(2);
        }
        assert!(cx.abs() < 1e-9 && cy.abs() < 1e-9, "centered");
        assert!((r2 / n as f64 - 1.0).abs() < 1e-9, "unit RMS radius");
    }

    #[test]
    fn monotone_transform_of_distances_still_perfect() {
        // Nonmetric MDS should be invariant to monotone distortion of the
        // dissimilarities.
        let pts = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.2, 1.1), (2.0, 0.5)];
        let n = pts.len();
        let base = planted(&pts);
        let mut warped = vec![vec![0.0; n]; n];
        for i in 0..n {
            for k in 0..n {
                let d = base.get(i, k);
                warped[i][k] = d * d * d + d; // strictly monotone
            }
        }
        let sol = nonmetric_mds(
            &DissimilarityMatrix::from_full(&warped),
            &MdsConfig::default(),
        );
        assert!(sol.alienation < 0.05, "theta = {}", sol.alienation);
    }

    #[test]
    fn equilateral_triangle() {
        let full = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let sol = nonmetric_mds(
            &DissimilarityMatrix::from_full(&full),
            &MdsConfig::default(),
        );
        // All pairwise map distances equal.
        let d01 = dist(&sol.coords, 0, 1);
        let d02 = dist(&sol.coords, 0, 2);
        let d12 = dist(&sol.coords, 1, 2);
        assert!((d01 - d02).abs() < 1e-6 && (d02 - d12).abs() < 1e-6);
        assert!(sol.alienation < 1e-6);
    }

    #[test]
    fn four_dim_structure_cannot_fully_embed() {
        // Simplex of 5 equidistant points needs 4 dimensions; in 2-D some
        // alienation remains... but weak monotonicity tolerates ties, so
        // theta stays small. Check it at least runs and stays bounded.
        let n = 5;
        let mut full = vec![vec![1.0; n]; n];
        for (i, row) in full.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        let sol = nonmetric_mds(
            &DissimilarityMatrix::from_full(&full),
            &MdsConfig::default(),
        );
        assert!((0.0..=1.0).contains(&sol.alienation));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = [(0.0, 0.0), (1.0, 0.2), (0.3, 1.0), (1.5, 1.5)];
        let diss = planted(&pts);
        let a = nonmetric_mds(&diss, &MdsConfig::default());
        let b = nonmetric_mds(&diss, &MdsConfig::default());
        assert_eq!(a.coords.as_slice(), b.coords.as_slice());
        assert_eq!(a.alienation, b.alienation);
    }

    #[test]
    fn one_dimensional_embedding_of_a_line() {
        // Collinear data embeds perfectly in 1-D.
        let pts = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.5, 0.0), (5.0, 0.0)];
        let diss = planted(&pts);
        let sol = nonmetric_mds(
            &diss,
            &MdsConfig {
                dims: 1,
                ..Default::default()
            },
        );
        assert_eq!(sol.coords.cols(), 1);
        assert!(sol.alienation < 1e-6, "theta = {}", sol.alienation);
    }

    #[test]
    fn extra_dimensions_never_hurt() {
        // A 4-point simplex (all pairwise distances equal) needs 3
        // dimensions; the 3-D fit must be at least as good as the 2-D one.
        let n = 4;
        let mut full = vec![vec![1.0; n]; n];
        for (i, row) in full.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        // Break the ties slightly so 2-D genuinely struggles.
        full[0][1] = 1.05;
        full[1][0] = 1.05;
        full[2][3] = 0.95;
        full[3][2] = 0.95;
        let diss = DissimilarityMatrix::from_full(&full);
        let d2 = nonmetric_mds(&diss, &MdsConfig { dims: 2, ..Default::default() });
        let d3 = nonmetric_mds(&diss, &MdsConfig { dims: 3, ..Default::default() });
        assert_eq!(d3.coords.cols(), 3);
        assert!(d3.alienation <= d2.alienation + 1e-9);
        assert!(d3.alienation < 1e-6, "3-D fit should be exact: {}", d3.alienation);
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn dims_must_be_below_n() {
        let full = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        nonmetric_mds(
            &DissimilarityMatrix::from_full(&full),
            &MdsConfig {
                dims: 3,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least 3 observations")]
    fn too_small_panics() {
        let full = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        nonmetric_mds(
            &DissimilarityMatrix::from_full(&full),
            &MdsConfig::default(),
        );
    }

    fn dist(m: &Matrix, i: usize, k: usize) -> f64 {
        let dx = m[(i, 0)] - m[(k, 0)];
        let dy = m[(i, 1)] - m[(k, 1)];
        (dx * dx + dy * dy).sqrt()
    }
}
