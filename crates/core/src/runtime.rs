//! Unified runtime configuration for every executable in the workspace.
//!
//! The `wl` CLI, the twelve reproduction binaries, and `wl-serve` all share
//! three runtime knobs: worker threads (`--threads N`, defaulting to the
//! `WL_THREADS` environment variable and then the available parallelism)
//! and the two observability flags (`--trace text|json`,
//! `--metrics-out PATH`). They used to be parsed in three slightly
//! different places; [`Runtime::extract`] is now the single implementation,
//! pulling the flags out of an argument list wherever they appear and
//! leaving everything else for the program's own parser.
//!
//! ```
//! let mut args: Vec<String> = ["--jobs", "512", "--threads", "4"]
//!     .map(String::from).to_vec();
//! let rt = coplot::Runtime::extract(&mut args).unwrap();
//! assert_eq!(rt.threads, 4);
//! assert_eq!(args, ["--jobs", "512"]); // the rest stays
//! let _session = rt.obs_session().unwrap(); // arms wl-obs when requested
//! ```

use crate::error::CoplotError;

/// The shared runtime knobs of one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Runtime {
    /// Worker threads for synthesis, Hurst estimation, MDS restarts and
    /// the serve pool (results are bit-identical for any count).
    pub threads: usize,
    /// `--trace` value (`"text"` or `"json"`), if given.
    pub trace: Option<String>,
    /// `--metrics-out` path, if given.
    pub metrics_out: Option<String>,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime {
            threads: wl_par::default_threads(),
            trace: None,
            metrics_out: None,
        }
    }
}

impl Runtime {
    /// Pull `--threads N`, `--trace FORMAT` and `--metrics-out PATH` out of
    /// `args` (valid anywhere on the command line), leaving all other
    /// arguments in place and in order. Threads fall back to `WL_THREADS`,
    /// then the available parallelism (see `wl_par::default_threads`).
    ///
    /// # Errors
    /// [`CoplotError::InvalidConfig`] for a flag without a value, a
    /// non-integer or zero `--threads`, or a `--trace` format other than
    /// `text`/`json`.
    pub fn extract(args: &mut Vec<String>) -> Result<Runtime, CoplotError> {
        let mut rt = Runtime::default();
        let mut rest = Vec::with_capacity(args.len());
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                name @ ("--threads" | "--trace" | "--metrics-out") => {
                    let value = args.get(i + 1).cloned().ok_or_else(|| {
                        CoplotError::InvalidConfig(format!("flag {name} needs a value"))
                    })?;
                    match name {
                        "--threads" => {
                            rt.threads = value.parse().ok().filter(|&t: &usize| t > 0).ok_or_else(
                                || {
                                    CoplotError::InvalidConfig(
                                        "--threads needs a positive integer".into(),
                                    )
                                },
                            )?;
                        }
                        "--trace" => {
                            // Validate eagerly so the error mentions the
                            // flag, not a failing session at exit.
                            wl_obs::TraceFormat::parse(&value)
                                .map_err(CoplotError::InvalidConfig)?;
                            rt.trace = Some(value);
                        }
                        _ => rt.metrics_out = Some(value),
                    }
                    i += 2;
                }
                _ => {
                    rest.push(args[i].clone());
                    i += 1;
                }
            }
        }
        *args = rest;
        Ok(rt)
    }

    /// Start the observability session for this runtime: arms the global
    /// `wl-obs` registry when `--trace`/`--metrics-out` was given. Hold the
    /// session for the life of `main`; dropping (or
    /// [`finish`](wl_obs::ObsSession::finish)ing) it exports the trace to
    /// stderr and/or the metrics file. Stdout is never touched.
    ///
    /// # Errors
    /// [`CoplotError::InvalidConfig`] when the trace format is invalid
    /// (already caught by [`extract`](Runtime::extract)) — kept as a
    /// `Result` for callers that build a [`Runtime`] by hand.
    pub fn obs_session(&self) -> Result<wl_obs::ObsSession, CoplotError> {
        wl_obs::ObsSession::from_flags(self.trace.as_deref(), self.metrics_out.as_deref())
            .map_err(CoplotError::InvalidConfig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extracts_flags_anywhere_and_keeps_the_rest() {
        let mut args = argv(&[
            "coplot",
            "--threads",
            "3",
            "a.swf",
            "--trace",
            "json",
            "--seed",
            "7",
            "--metrics-out",
            "/tmp/m.jsonl",
        ]);
        let rt = Runtime::extract(&mut args).unwrap();
        assert_eq!(rt.threads, 3);
        assert_eq!(rt.trace.as_deref(), Some("json"));
        assert_eq!(rt.metrics_out.as_deref(), Some("/tmp/m.jsonl"));
        assert_eq!(args, argv(&["coplot", "a.swf", "--seed", "7"]));
    }

    #[test]
    fn defaults_when_absent() {
        let mut args = argv(&["stats", "a.swf"]);
        let rt = Runtime::extract(&mut args).unwrap();
        assert_eq!(rt.threads, wl_par::default_threads());
        assert_eq!(rt.trace, None);
        assert_eq!(rt.metrics_out, None);
        assert_eq!(args, argv(&["stats", "a.swf"]));
    }

    #[test]
    fn rejects_malformed_flags() {
        for bad in [
            argv(&["--threads"]),
            argv(&["--threads", "zero"]),
            argv(&["--threads", "0"]),
            argv(&["--trace", "xml"]),
            argv(&["--trace"]),
            argv(&["--metrics-out"]),
        ] {
            let mut args = bad.clone();
            let err = Runtime::extract(&mut args).unwrap_err();
            assert!(
                matches!(err, CoplotError::InvalidConfig(_)),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn obs_session_disabled_by_default() {
        let rt = Runtime::default();
        let session = rt.obs_session().unwrap();
        session.finish();
    }
}
