//! The Co-plot multivariate analysis method (Talby, Feitelson, Raveh;
//! IPPS 1999).
//!
//! Co-plot maps `n` observations described by `p` variables into a single
//! two-dimensional picture that shows observations *and* variables at once.
//! It is designed for exactly the regime workload studies live in: few
//! observations (ten production logs, five models), comparatively many
//! variables, and no distributional assumptions. The method has four stages,
//! each implemented by one module here:
//!
//! 1. **Normalization** ([`data`]): each variable column is centered and
//!    scaled to z-scores so variables with different units can be related
//!    (Eq. 1 of the paper).
//! 2. **Dissimilarity** ([`dissimilarity`]): a symmetric `n x n` matrix of
//!    city-block distances between observation rows (Eq. 2).
//! 3. **Multidimensional scaling** ([`mds`]): the matrix is mapped into the
//!    plane such that the *order* of map distances matches the order of
//!    dissimilarities, scored by Guttman's coefficient of alienation
//!    ([`alienation`], Eqs. 3-4); values below 0.15 are considered good.
//! 4. **Variable arrows** ([`arrows`]): each variable is drawn as an arrow
//!    from the centroid pointing in the direction that maximizes the
//!    correlation between the variable's values and the projections of the
//!    observation points onto the arrow. Highly correlated variables point
//!    the same way; the per-variable maximal correlations are the stage-4
//!    goodness-of-fit measures, and low-correlation variables should be
//!    removed and the analysis re-run.
//!
//! The [`pipeline`] module ties the stages into the [`pipeline::Coplot`]
//! builder, including the paper's variable-elimination workflow, and
//! [`render`] draws the result as text or SVG. Underneath the facade, the
//! [`engine`] module holds the staged [`engine::CoplotEngine`]: explicit
//! stage traits, caching of the normalized matrix and dissimilarity
//! contributions between re-runs, parallel deterministic MDS restarts, and
//! per-stage [`engine::StageReport`] instrumentation. Invalid inputs are
//! reported as [`error::CoplotError`] values, never panics.
//!
//! ```
//! use coplot::{DataMatrix, Coplot};
//!
//! // Four observations, two correlated variables and one inverse one.
//! let data = DataMatrix::from_rows(
//!     vec!["a".into(), "b".into(), "c".into(), "d".into()],
//!     vec!["x".into(), "y".into(), "anti".into()],
//!     &[
//!         &[1.0, 2.0, 8.0],
//!         &[2.0, 2.5, 6.0],
//!         &[3.0, 3.5, 4.0],
//!         &[4.0, 4.0, 2.0],
//!     ],
//! );
//! let result = Coplot::new().seed(7).analyze(&data).unwrap();
//! assert!(result.alienation < 0.15, "good fit expected");
//! assert_eq!(result.arrows.len(), 3);
//! ```

pub mod alienation;
pub mod api;
pub mod arrows;
pub mod data;
pub mod dissimilarity;
pub mod engine;
pub mod error;
pub mod mds;
pub mod pipeline;
pub mod render;
pub mod runtime;

pub use alienation::{coefficient_of_alienation, mu_statistic};
pub use api::{
    AnalysisRequest, AnalysisResponse, ApiError, ApiErrorKind, ArrowOut, CoplotOut, DatasetSpec,
    Envelope, EnvelopePayload, ErrorBody, HurstOut, Operation, ShardPart, ShardRequest,
    ShardResponse, SubsetEntry, SubsetOut, API_VERSIONS,
};
pub use arrows::{fit_arrow, try_fit_arrow, Arrow};
pub use data::{DataMatrix, Imputation, NormalizedMatrix};
pub use dissimilarity::{DissimilarityMatrix, Metric};
pub use engine::{
    CoplotEngine, CoplotEngineBuilder, PairContributions, Selection, SharedSubsetSession, Stage,
    StageReport, StageReportTable, SubsetCombiner,
};
pub use error::{CoplotError, ParseKind};
pub use mds::{nonmetric_mds, nonmetric_mds_warm, restart_seed, MdsConfig, MdsSolution};
pub use pipeline::{Coplot, CoplotResult};
pub use runtime::Runtime;
