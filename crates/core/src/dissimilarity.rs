//! Stage 2: dissimilarities between observation rows.
//!
//! The paper uses the city-block (L1) distance between z-score rows
//! (Eq. 2). Euclidean and general Minkowski metrics are provided for the
//! ablation benches; the MDS stage is metric-agnostic because it only uses
//! the *order* of the dissimilarities.

use crate::data::NormalizedMatrix;
use crate::error::CoplotError;
use wl_linalg::vecops;

/// Distance metric between normalized observation rows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Metric {
    /// Sum of absolute coordinate differences (the paper's choice).
    #[default]
    CityBlock,
    /// Euclidean (L2) distance.
    Euclidean,
    /// Minkowski distance of the given order (>= 1).
    Minkowski(f64),
}

impl Metric {
    /// Distance between two rows under this metric.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::CityBlock => vecops::cityblock_distance(a, b),
            Metric::Euclidean => vecops::euclidean_distance(a, b),
            Metric::Minkowski(p) => vecops::minkowski_distance(a, b, *p),
        }
    }

    /// Distances from `a` to four rows at once, one lane per row. Each lane
    /// is bit-identical to the matching [`Metric::distance`] call; see
    /// `wl_linalg::vecops` for the lane contract.
    fn distance4(&self, a: &[f64], b: [&[f64]; 4]) -> [f64; 4] {
        match self {
            Metric::CityBlock => vecops::cityblock_distance4(a, b),
            Metric::Euclidean => vecops::euclidean_distance4(a, b),
            Metric::Minkowski(p) => vecops::minkowski_distance4(a, b, *p),
        }
    }

    /// The Minkowski order `p` of this metric. All three metrics are
    /// `(sum_v |a_v - b_v|^p)^(1/p)`, which is what lets the engine cache
    /// per-variable contributions `|a_v - b_v|^p` and rebuild distances for
    /// any variable subset by summing (see `engine`).
    pub fn order(&self) -> f64 {
        match self {
            Metric::CityBlock => 1.0,
            Metric::Euclidean => 2.0,
            Metric::Minkowski(p) => *p,
        }
    }
}

/// Symmetric `n x n` dissimilarity matrix with zero diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct DissimilarityMatrix {
    n: usize,
    /// Upper triangle, row-major: entry for (i, k) with i < k at
    /// `index(i, k)`.
    upper: Vec<f64>,
}

impl DissimilarityMatrix {
    /// Compute all pairwise dissimilarities of a normalized matrix.
    ///
    /// Row `i`'s partners are processed four at a time through the lane
    /// kernels in `wl_linalg::vecops` (scalar remainder), which keeps each
    /// pair's accumulation chain — and therefore every stored value —
    /// bit-identical to the plain per-pair loop while the four chains
    /// pipeline. That bitwise guarantee is what lets the engine's
    /// per-variable contribution cache (`engine::PairContributions`)
    /// reproduce this matrix exactly.
    pub fn compute(z: &NormalizedMatrix, metric: Metric) -> DissimilarityMatrix {
        let n = z.n_observations();
        let mut upper = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            let a = z.row(i);
            let mut k = i + 1;
            while k + 4 <= n {
                let block = metric.distance4(a, [z.row(k), z.row(k + 1), z.row(k + 2), z.row(k + 3)]);
                upper.extend_from_slice(&block);
                k += 4;
            }
            while k < n {
                upper.push(metric.distance(a, z.row(k)));
                k += 1;
            }
        }
        DissimilarityMatrix { n, upper }
    }

    /// Build directly from a full symmetric matrix (used by tests and by
    /// analyses that bring their own dissimilarities).
    ///
    /// # Errors
    /// Returns [`CoplotError::DimensionMismatch`] for ragged input and
    /// [`CoplotError::Normalization`] when the matrix is asymmetric or has
    /// a nonzero diagonal.
    pub fn from_full(matrix: &[Vec<f64>]) -> Result<DissimilarityMatrix, CoplotError> {
        let n = matrix.len();
        let mut upper = Vec::with_capacity(n * (n - 1) / 2);
        for (i, row) in matrix.iter().enumerate() {
            if row.len() != n {
                return Err(CoplotError::DimensionMismatch {
                    context: format!("dissimilarity matrix row {i}"),
                    expected: n,
                    got: row.len(),
                });
            }
            // `>=` plus an explicit NaN check so a NaN diagonal also errors.
            if row[i].abs() >= 1e-12 || row[i].is_nan() {
                return Err(CoplotError::Normalization(format!(
                    "dissimilarity diagonal entry ({i}, {i}) must be zero, got {}",
                    row[i]
                )));
            }
            for (k, &value) in row.iter().enumerate().skip(i + 1) {
                let gap = (value - matrix[k][i]).abs();
                // `>=` plus an explicit NaN check so NaN cells also error.
                if gap >= 1e-9 || gap.is_nan() {
                    return Err(CoplotError::Normalization(format!(
                        "dissimilarity matrix must be symmetric: ({i}, {k}) = {value} \
                         vs ({k}, {i}) = {}",
                        matrix[k][i]
                    )));
                }
                upper.push(value);
            }
        }
        Ok(DissimilarityMatrix { n, upper })
    }

    /// Build from an already-flattened upper triangle (the engine's cached
    /// contribution path). Callers guarantee the length invariant.
    pub(crate) fn from_pairs(n: usize, upper: Vec<f64>) -> DissimilarityMatrix {
        debug_assert_eq!(upper.len(), n * (n - 1) / 2, "pair count mismatch");
        DissimilarityMatrix { n, upper }
    }

    /// Overwrite one upper-triangle entry, bypassing validation — only for
    /// exercising error paths in tests.
    #[cfg(test)]
    pub(crate) fn poison_for_tests(&mut self, pair: usize, value: f64) {
        self.upper[pair] = value;
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct pairs `n (n-1) / 2`.
    pub fn n_pairs(&self) -> usize {
        self.upper.len()
    }

    /// Dissimilarity between observations `i` and `k` (0 when `i == k`).
    ///
    /// # Panics
    /// Panics on an out-of-range index — a caller bug, not a data error.
    pub fn get(&self, i: usize, k: usize) -> f64 {
        assert!(i < self.n && k < self.n, "index out of range");
        if i == k {
            return 0.0;
        }
        let (lo, hi) = if i < k { (i, k) } else { (k, i) };
        self.upper[Self::index(self.n, lo, hi)]
    }

    /// The flattened upper triangle in (0,1), (0,2), ..., (n-2, n-1) order.
    pub fn pairs(&self) -> &[f64] {
        &self.upper
    }

    /// Flat index of pair `(i, k)` with `i < k`.
    fn index(n: usize, i: usize, k: usize) -> usize {
        debug_assert!(i < k);
        // Pairs before row i: i rows of lengths (n-1), (n-2), ...
        i * n - i * (i + 1) / 2 + (k - i - 1)
    }

    /// Iterator of `((i, k), dissimilarity)` over the upper triangle.
    pub fn iter_pairs(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        let n = self.n;
        (0..n)
            .flat_map(move |i| ((i + 1)..n).map(move |k| (i, k)))
            .zip(self.upper.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataMatrix, Imputation};

    fn normalized_identity_like() -> NormalizedMatrix {
        // Three well-separated observations in 2 variables.
        DataMatrix::from_rows(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["x".into(), "y".into()],
            &[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 2.0]],
        )
        .normalize(Imputation::Forbid)
        .unwrap()
    }

    #[test]
    fn cityblock_matches_hand_computation() {
        let z = normalized_identity_like();
        let d = DissimilarityMatrix::compute(&z, Metric::CityBlock);
        // Direct recomputation.
        for i in 0..3 {
            for k in 0..3 {
                let expect: f64 = z
                    .row(i)
                    .iter()
                    .zip(z.row(k))
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!((d.get(i, k) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn symmetric_zero_diagonal() {
        let z = normalized_identity_like();
        let d = DissimilarityMatrix::compute(&z, Metric::Euclidean);
        for i in 0..3 {
            assert_eq!(d.get(i, i), 0.0);
            for k in 0..3 {
                assert_eq!(d.get(i, k), d.get(k, i));
            }
        }
    }

    #[test]
    fn pair_count_and_indexing() {
        let z = DataMatrix::from_rows(
            (0..5).map(|i| format!("o{i}")).collect(),
            vec!["v".into()],
            &[&[1.0], &[2.0], &[3.0], &[4.0], &[5.0]],
        )
        .normalize(Imputation::Forbid)
        .unwrap();
        let d = DissimilarityMatrix::compute(&z, Metric::CityBlock);
        assert_eq!(d.n_pairs(), 10);
        // iter_pairs covers each unordered pair once, in order.
        let pairs: Vec<(usize, usize)> = d.iter_pairs().map(|(ik, _)| ik).collect();
        assert_eq!(pairs[0], (0, 1));
        assert_eq!(pairs[9], (3, 4));
        assert_eq!(pairs.len(), 10);
        // get() agrees with iteration order values.
        for ((i, k), v) in d.iter_pairs() {
            assert_eq!(d.get(i, k), v);
        }
    }

    #[test]
    fn metric_choices_differ() {
        let z = normalized_identity_like();
        let l1 = DissimilarityMatrix::compute(&z, Metric::CityBlock);
        let l2 = DissimilarityMatrix::compute(&z, Metric::Euclidean);
        let l3 = DissimilarityMatrix::compute(&z, Metric::Minkowski(3.0));
        // L1 >= L2 >= L3 pointwise.
        for ((i, k), v1) in l1.iter_pairs() {
            let v2 = l2.get(i, k);
            let v3 = l3.get(i, k);
            assert!(v1 >= v2 - 1e-12);
            assert!(v2 >= v3 - 1e-12);
        }
    }

    #[test]
    fn blocked_compute_is_bitwise_equal_to_scalar_loop() {
        // Cover every remainder shape of the 4-lane blocking (n mod 4 in
        // {0,1,2,3}) and all three metrics.
        for n in 3..=11usize {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    (0..5)
                        .map(|v| ((i * 31 + v * 17 + 3) % 23) as f64 * 0.37 - 2.0)
                        .collect()
                })
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let z = DataMatrix::from_rows(
                (0..n).map(|i| format!("o{i}")).collect(),
                (0..5).map(|v| format!("v{v}")).collect(),
                &refs,
            )
            .normalize(Imputation::Forbid)
            .unwrap();
            for metric in [Metric::CityBlock, Metric::Euclidean, Metric::Minkowski(3.0)] {
                let fast = DissimilarityMatrix::compute(&z, metric);
                let mut scalar = Vec::new();
                for i in 0..n {
                    for k in (i + 1)..n {
                        scalar.push(metric.distance(z.row(i), z.row(k)));
                    }
                }
                assert_eq!(fast.pairs().len(), scalar.len());
                for (pair, (f, s)) in fast.pairs().iter().zip(&scalar).enumerate() {
                    assert_eq!(
                        f.to_bits(),
                        s.to_bits(),
                        "n={n} metric={metric:?} pair={pair}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_full_round_trip() {
        let m = vec![
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 3.0],
            vec![2.0, 3.0, 0.0],
        ];
        let d = DissimilarityMatrix::from_full(&m).unwrap();
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(2, 0), 2.0);
        assert_eq!(d.get(1, 2), 3.0);
    }

    #[test]
    fn asymmetric_rejected() {
        let m = vec![
            vec![0.0, 1.0],
            vec![2.0, 0.0],
        ];
        let err = DissimilarityMatrix::from_full(&m).unwrap_err();
        assert!(err.to_string().contains("symmetric"), "{err}");
    }

    #[test]
    fn ragged_and_bad_diagonal_rejected() {
        let ragged = vec![vec![0.0, 1.0], vec![1.0]];
        assert!(matches!(
            DissimilarityMatrix::from_full(&ragged).unwrap_err(),
            crate::CoplotError::DimensionMismatch { .. }
        ));
        let diag = vec![vec![1.0, 1.0], vec![1.0, 0.0]];
        assert!(DissimilarityMatrix::from_full(&diag).is_err());
        // NaN anywhere fails the symmetry/diagonal comparisons too.
        let nan = vec![vec![0.0, f64::NAN], vec![f64::NAN, 0.0]];
        assert!(DissimilarityMatrix::from_full(&nan).is_err());
    }
}
