//! R/S (rescaled adjusted range) analysis — appendix Eqs. 12-15.
//!
//! For a block of `n` observations with mean `A(n)` and standard deviation
//! `S(n)`, the adjusted range is `R(n) = max_k W_k - min_k W_k` where
//! `W_k = (X_1 + ... + X_k) - k A(n)` (with `W_0 = 0`). Long-range dependent
//! series follow `E[R/S] ~ c n^H`, so plotting `log(R/S)` against `log n`
//! over many block sizes (a *pox plot*) and fitting a line estimates `H`.

use wl_stats::linear_fit;

/// Smallest block size [`rs_hurst`] plots.
pub const DEFAULT_MIN_BLOCK: usize = 8;
/// Number of pox-plot points [`rs_hurst`] requests.
pub const DEFAULT_POINTS: usize = 20;

/// One point of the pox plot: block size and the mean R/S over all
/// non-overlapping blocks of that size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoxPoint {
    pub block_size: usize,
    pub mean_rs: f64,
    /// How many blocks contributed.
    pub blocks: usize,
}

/// The rescaled adjusted range R/S of one block. Returns `None` for blocks
/// shorter than 2 or with zero variance.
pub fn rescaled_range(block: &[f64]) -> Option<f64> {
    let n = block.len();
    if n < 2 {
        return None;
    }
    let mean = block.iter().sum::<f64>() / n as f64;
    // Sample standard deviation (divide by n, as in the original R/S
    // statistic definition).
    let var = block.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return None;
    }
    let s = var.sqrt();

    let mut w = 0.0;
    let mut max_w: f64 = 0.0; // W_0 = 0 participates in both extrema
    let mut min_w: f64 = 0.0;
    for &x in block {
        w += x - mean;
        max_w = max_w.max(w);
        min_w = min_w.min(w);
    }
    Some((max_w - min_w) / s)
}

/// Compute the pox plot: logarithmically spaced block sizes from
/// `min_block` (floored at 4) up to `len / 2`, so every plotted size
/// averages at least two complete blocks; mean R/S per size.
///
/// One upfront pass builds prefix sums of the series and its squares, so
/// each block's mean and variance are O(1) lookups and only the
/// adjusted-range extrema need a per-element pass — one sweep per block
/// size instead of the naive three. That remaining sweep reads the partial
/// sums `W_k = p[lo+k] - p[lo] - k A` straight off the prefix array, so it
/// is a plain (reassociable, vectorizable) max/min reduction rather than a
/// loop-carried accumulation.
pub fn pox_plot(x: &[f64], min_block: usize, points: usize) -> Vec<PoxPoint> {
    let n = x.len();
    // p[i] = sum of x[..i], q[i] = sum of squares of x[..i].
    let mut p = Vec::with_capacity(n + 1);
    let mut q = Vec::with_capacity(n + 1);
    p.push(0.0);
    q.push(0.0);
    let (mut ps, mut qs) = (0.0, 0.0);
    for &v in x {
        ps += v;
        qs += v * v;
        p.push(ps);
        q.push(qs);
    }
    pox_plot_with_prefix(&p, &q, min_block, points)
}

/// [`pox_plot`] over caller-maintained prefix sums: `p[i]` is the sum of
/// the first `i` series values and `q[i]` the sum of their squares (so
/// `p[0] == q[0] == 0.0` and both arrays have `series length + 1` entries).
///
/// This is the streaming entry point: a consumer re-estimating H after
/// every window appends the new window's values to its prefix arrays in
/// O(new values) and re-plots without touching the earlier series — the
/// append performs the same left-to-right accumulation [`pox_plot`]'s
/// upfront pass does, so the result is bit-identical to handing the whole
/// series to [`pox_plot`] (see `online::OnlineHurst`).
///
/// # Panics
/// Panics when the arrays disagree in length or are empty.
pub fn pox_plot_with_prefix(
    p: &[f64],
    q: &[f64],
    min_block: usize,
    points: usize,
) -> Vec<PoxPoint> {
    assert_eq!(p.len(), q.len(), "prefix arrays must agree in length");
    assert!(!p.is_empty(), "prefix arrays carry a leading zero entry");
    let n = p.len() - 1;
    let min_block = min_block.max(4);
    let max_block = n / 2;
    if max_block < min_block || points == 0 {
        return Vec::new();
    }
    let ratio = (max_block as f64 / min_block as f64).powf(1.0 / (points.max(2) - 1) as f64);

    let mut out: Vec<PoxPoint> = Vec::new();
    let mut size_f = min_block as f64;
    for _ in 0..points {
        let size = (size_f.round() as usize).clamp(min_block, max_block);
        if out.last().map(|p| p.block_size) != Some(size) {
            let s = size as f64;
            let mut sum = 0.0;
            let mut count = 0;
            for b in 0..n / size {
                let (lo, hi) = (b * size, (b + 1) * size);
                let mean = (p[hi] - p[lo]) / s;
                // E[x^2] - mean^2; cancellation can push a (near-)constant
                // block to <= 0, which the direct two-pass variance reports
                // as degenerate too — skip either way.
                let var = (q[hi] - q[lo]) / s - mean * mean;
                if var <= 0.0 {
                    continue;
                }
                let sdev = var.sqrt();
                let base = p[lo];
                let win = &p[lo + 1..=hi];
                // Four independent extrema lanes break the loop-carried
                // max/min dependency; merging them at the end is exact, so
                // the result matches a single-lane scan bit for bit.
                // W_0 = 0 participates in both extrema via the lane seeds.
                let (max_w, min_w) = wl_linalg::vecops::affine_extrema4(win, base, mean);
                let r = max_w - min_w;
                sum += r / sdev;
                count += 1;
            }
            if count > 0 {
                out.push(PoxPoint {
                    block_size: size,
                    mean_rs: sum / count as f64,
                    blocks: count,
                });
            }
        }
        size_f *= ratio;
    }
    wl_obs::counter!("selfsim.pox.calls", 1u64);
    wl_obs::counter!("selfsim.pox.points", out.len() as u64);
    wl_obs::counter!(
        "selfsim.pox.blocks",
        out.iter().map(|p| p.blocks as u64).sum::<u64>()
    );
    out
}

/// Estimate the Hurst parameter by R/S analysis: slope of the pox plot in
/// log-log coordinates. Returns `None` when fewer than 3 pox points are
/// available (series too short or degenerate).
pub fn rs_hurst(x: &[f64]) -> Option<f64> {
    let points = pox_plot(x, DEFAULT_MIN_BLOCK, DEFAULT_POINTS);
    if points.len() < 3 {
        return None;
    }
    let logs_n: Vec<f64> = points.iter().map(|p| (p.block_size as f64).ln()).collect();
    let logs_rs: Vec<f64> = points.iter().map(|p| p.mean_rs.ln()).collect();
    linear_fit(&logs_n, &logs_rs).map(|f| f.slope)
}

/// The pre-prefix-sum pox plot, kept as the test oracle: per block it
/// recomputes mean and variance directly via [`rescaled_range`].
#[cfg(test)]
pub(crate) fn pox_plot_naive(x: &[f64], min_block: usize, points: usize) -> Vec<PoxPoint> {
    let n = x.len();
    let min_block = min_block.max(4);
    let max_block = n / 2;
    if max_block < min_block || points == 0 {
        return Vec::new();
    }
    let ratio = (max_block as f64 / min_block as f64).powf(1.0 / (points.max(2) - 1) as f64);
    let mut out: Vec<PoxPoint> = Vec::new();
    let mut size_f = min_block as f64;
    for _ in 0..points {
        let size = (size_f.round() as usize).clamp(min_block, max_block);
        if out.last().map(|p| p.block_size) != Some(size) {
            let mut sum = 0.0;
            let mut count = 0;
            for block in x.chunks_exact(size) {
                if let Some(rs) = rescaled_range(block) {
                    sum += rs;
                    count += 1;
                }
            }
            if count > 0 {
                out.push(PoxPoint {
                    block_size: size,
                    mean_rs: sum / count as f64,
                    blocks: count,
                });
            }
        }
        size_f *= ratio;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wl_stats::rng::seeded_rng;
    use rand::Rng;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                // Sum of 12 uniforms minus 6: approximately standard normal.
                (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
            })
            .collect()
    }

    #[test]
    fn rescaled_range_hand_example() {
        // Block [1, 2, 3]: mean 2, deviations cumulate to -1, -1, 0.
        // R = 0 - (-1) = 1. S = sqrt(2/3).
        let rs = rescaled_range(&[1.0, 2.0, 3.0]).unwrap();
        let expect = 1.0 / (2.0f64 / 3.0).sqrt();
        assert!((rs - expect).abs() < 1e-12);
    }

    #[test]
    fn degenerate_blocks_rejected() {
        assert!(rescaled_range(&[1.0]).is_none());
        assert!(rescaled_range(&[2.0, 2.0, 2.0]).is_none());
    }

    #[test]
    fn white_noise_scores_near_half() {
        let x = white_noise(8192, 1);
        let h = rs_hurst(&x).unwrap();
        // R/S has a known small-sample positive bias; accept a band.
        assert!((0.4..0.68).contains(&h), "H = {h}");
    }

    #[test]
    fn random_walk_increments_vs_levels() {
        // The *levels* of a random walk are strongly persistent: H near 1.
        let noise = white_noise(8192, 2);
        let mut walk = Vec::with_capacity(noise.len());
        let mut acc = 0.0;
        for v in &noise {
            acc += v;
            walk.push(acc);
        }
        let h_walk = rs_hurst(&walk).unwrap();
        let h_noise = rs_hurst(&noise).unwrap();
        assert!(h_walk > 0.8, "walk H = {h_walk}");
        assert!(h_walk > h_noise + 0.2);
    }

    #[test]
    fn pox_plot_block_sizes_increase() {
        let x = white_noise(2048, 3);
        let points = pox_plot(&x, 8, 15);
        assert!(points.len() >= 5);
        for w in points.windows(2) {
            assert!(w[0].block_size < w[1].block_size);
        }
        // Largest size uses at least 2 blocks.
        assert!(points.last().unwrap().blocks >= 2);
    }

    #[test]
    fn too_short_series_is_none() {
        assert!(rs_hurst(&[1.0, 2.0, 3.0]).is_none());
        assert!(rs_hurst(&[]).is_none());
    }

    #[test]
    fn anti_persistent_alternation_scores_low() {
        let x: Vec<f64> = (0..4096)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        // Purely alternating series: R/S grows very slowly.
        let h = rs_hurst(&x).unwrap();
        assert!(h < 0.3, "H = {h}");
    }

    /// Point-by-point agreement between the prefix-sum plot and the naive
    /// oracle, to `tol` relative.
    fn assert_matches_oracle(x: &[f64], min_block: usize, points: usize, tol: f64) {
        let fast = pox_plot(x, min_block, points);
        let naive = pox_plot_naive(x, min_block, points);
        assert_eq!(fast.len(), naive.len());
        for (f, o) in fast.iter().zip(&naive) {
            assert_eq!(f.block_size, o.block_size);
            assert_eq!(f.blocks, o.blocks);
            let rel = (f.mean_rs - o.mean_rs).abs() / o.mean_rs.abs().max(1e-300);
            assert!(
                rel <= tol,
                "block {}: {} vs {} (rel {rel:e})",
                f.block_size,
                f.mean_rs,
                o.mean_rs
            );
        }
    }

    #[test]
    fn prefix_sum_plot_matches_naive_on_noise_and_walks() {
        for seed in 0..4 {
            let noise = white_noise(3000 + 97 * seed as usize, seed);
            assert_matches_oracle(&noise, 8, 20, 1e-12);
            let mut acc = 0.0;
            let walk: Vec<f64> = noise
                .iter()
                .map(|v| {
                    acc += v;
                    acc
                })
                .collect();
            // Walk levels drift far from zero, so small blocks have
            // mean^2 >> var and the E[x^2] - mean^2 form loses a few more
            // bits to cancellation than on centered noise.
            assert_matches_oracle(&walk, 4, 15, 1e-9);
        }
    }

    proptest! {
        #[test]
        fn prefix_sum_plot_matches_naive_on_random_series(
            xs in proptest::collection::vec(-1e3f64..1e3, 64..400),
            min_block in 4usize..16,
            points in 1usize..25,
        ) {
            assert_matches_oracle(&xs, min_block, points, 1e-12);
        }

        #[test]
        fn rescaled_range_scale_invariant(
            xs in proptest::collection::vec(-100f64..100.0, 8..64),
            scale in 0.5f64..100.0,
        ) {
            // R/S is invariant under affine maps x -> a x + b.
            if let Some(rs) = rescaled_range(&xs) {
                let mapped: Vec<f64> = xs.iter().map(|v| scale * v + 7.0).collect();
                let rs2 = rescaled_range(&mapped).unwrap();
                prop_assert!((rs - rs2).abs() / rs <= 1e-9, "{rs} vs {rs2}");
            }
        }
    }
}
