//! Fast Fourier transform: iterative radix-2 plus Bluestein's algorithm for
//! arbitrary lengths.
//!
//! The periodogram estimator needs the DFT of job series whose lengths are
//! whatever the log happened to contain, so a power-of-two-only FFT is not
//! enough; Bluestein's chirp-z trick reduces any length to a power-of-two
//! convolution. The Davies-Harte fGn generator also runs on these kernels.
//!
//! Transforms of one length recur constantly — every fGn path of a
//! generator reuses one embedding size, every periodogram of an 8192-job
//! log is the same length — so [`FftPlan`] precomputes the per-length
//! tables (bit-reversal permutation, butterfly twiddles, Bluestein chirp
//! and B-spectrum) once, and [`plan`] caches plans by length for the whole
//! process. Planned transforms are **bit-identical** to the planless
//! [`fft_pow2`]/[`fft_any`] paths: the tables are filled by exactly the
//! code the planless kernels run inline (same twiddle recurrence, same
//! chirp expressions), so only the wall time changes.

use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::{Arc, Mutex, OnceLock};

/// In-place radix-2 FFT over split real/imaginary arrays.
///
/// `inverse` applies the conjugate transform *without* the 1/n scaling
/// (callers scale when they need a round trip).
///
/// # Panics
/// Panics unless the length is a power of two (and equal for both arrays).
pub fn fft_pow2(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "fft_pow2 requires power-of-two length");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    // Danielson-Lanczos butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0, 0.0);
            for k in 0..len / 2 {
                let a = start + k;
                let b = a + len / 2;
                let tr = re[b] * cr - im[b] * ci;
                let ti = re[b] * ci + im[b] * cr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }
}

/// DFT of arbitrary length via Bluestein's algorithm (falls back to the
/// radix-2 kernel directly for power-of-two lengths).
///
/// Returns `(re, im)` of the transform; `inverse` applies the conjugate
/// transform without scaling.
pub fn fft_any(re_in: &[f64], im_in: &[f64], inverse: bool) -> (Vec<f64>, Vec<f64>) {
    let n = re_in.len();
    assert_eq!(n, im_in.len(), "re/im length mismatch");
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    if n.is_power_of_two() {
        let mut re = re_in.to_vec();
        let mut im = im_in.to_vec();
        fft_pow2(&mut re, &mut im, inverse);
        return (re, im);
    }

    // Bluestein: x_k * chirp_k convolved with conjugate chirp.
    let sign = if inverse { 1.0 } else { -1.0 };
    let m = (2 * n - 1).next_power_of_two();

    // chirp_k = exp(sign * i * pi * k^2 / n)
    let chirp: Vec<(f64, f64)> = (0..n)
        .map(|k| {
            // k^2 mod 2n avoids precision loss for large k.
            let k2 = ((k as u128 * k as u128) % (2 * n as u128)) as f64;
            let ang = sign * PI * k2 / n as f64;
            (ang.cos(), ang.sin())
        })
        .collect();

    let mut are = vec![0.0; m];
    let mut aim = vec![0.0; m];
    for k in 0..n {
        let (cr, ci) = chirp[k];
        are[k] = re_in[k] * cr - im_in[k] * ci;
        aim[k] = re_in[k] * ci + im_in[k] * cr;
    }

    let mut bre = vec![0.0; m];
    let mut bim = vec![0.0; m];
    // b_k = conj(chirp_k), wrapped for negative indices.
    bre[0] = chirp[0].0;
    bim[0] = -chirp[0].1;
    for k in 1..n {
        let (cr, ci) = chirp[k];
        bre[k] = cr;
        bim[k] = -ci;
        bre[m - k] = cr;
        bim[m - k] = -ci;
    }

    fft_pow2(&mut are, &mut aim, false);
    fft_pow2(&mut bre, &mut bim, false);
    // Pointwise product.
    for i in 0..m {
        let r = are[i] * bre[i] - aim[i] * bim[i];
        let im_ = are[i] * bim[i] + aim[i] * bre[i];
        are[i] = r;
        aim[i] = im_;
    }
    fft_pow2(&mut are, &mut aim, true);
    // Unscaled inverse: divide by m, then multiply by chirp again.
    let scale = 1.0 / m as f64;
    let mut out_re = Vec::with_capacity(n);
    let mut out_im = Vec::with_capacity(n);
    for k in 0..n {
        let (cr, ci) = chirp[k];
        let r = are[k] * scale;
        let i = aim[k] * scale;
        out_re.push(r * cr - i * ci);
        out_im.push(r * ci + i * cr);
    }
    (out_re, out_im)
}

/// DFT of a real series: returns `(re, im)` of all `n` bins.
pub fn rfft(x: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let zeros = vec![0.0; x.len()];
    plan(x.len()).process_any(x, &zeros, false)
}

/// Precomputed tables for one radix-2 size.
#[derive(Debug)]
struct Pow2Tables {
    n: usize,
    /// Bit-reversal swaps `(i, j)` with `j > i`.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles, one vector of `w^k` per butterfly level
    /// (`len = 2, 4, ..., n`), filled with the same running recurrence
    /// [`fft_pow2`] uses inline so the planned transform is bit-identical.
    fwd: Vec<Vec<(f64, f64)>>,
    /// The inverse-transform twiddles (conjugate sign).
    inv: Vec<Vec<(f64, f64)>>,
}

impl Pow2Tables {
    fn new(n: usize) -> Pow2Tables {
        assert!(n.is_power_of_two(), "Pow2Tables requires power-of-two length");
        let mut swaps = Vec::new();
        if n > 1 {
            let bits = n.trailing_zeros();
            for i in 0..n {
                let j = i.reverse_bits() >> (usize::BITS - bits);
                if j > i {
                    swaps.push((i as u32, j as u32));
                }
            }
        }
        let levels = |sign: f64| -> Vec<Vec<(f64, f64)>> {
            let mut out = Vec::new();
            let mut len = 2;
            while len <= n {
                let ang = sign * 2.0 * PI / len as f64;
                let (wr, wi) = (ang.cos(), ang.sin());
                let mut tw = Vec::with_capacity(len / 2);
                let (mut cr, mut ci) = (1.0, 0.0);
                for _ in 0..len / 2 {
                    tw.push((cr, ci));
                    let ncr = cr * wr - ci * wi;
                    ci = cr * wi + ci * wr;
                    cr = ncr;
                }
                out.push(tw);
                len <<= 1;
            }
            out
        };
        Pow2Tables {
            n,
            swaps,
            fwd: levels(-1.0),
            inv: levels(1.0),
        }
    }

    /// The planned equivalent of [`fft_pow2`]: same butterflies, twiddles
    /// read from the tables instead of recomputed.
    fn fft(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        let n = self.n;
        assert_eq!(n, re.len(), "re length does not match plan");
        assert_eq!(n, im.len(), "im length does not match plan");
        if n <= 1 {
            return;
        }
        for &(i, j) in &self.swaps {
            re.swap(i as usize, j as usize);
            im.swap(i as usize, j as usize);
        }
        let levels = if inverse { &self.inv } else { &self.fwd };
        let mut len = 2;
        for tw in levels {
            for start in (0..n).step_by(len) {
                for (k, &(cr, ci)) in tw.iter().enumerate() {
                    let a = start + k;
                    let b = a + len / 2;
                    let tr = re[b] * cr - im[b] * ci;
                    let ti = re[b] * ci + im[b] * cr;
                    re[b] = re[a] - tr;
                    im[b] = im[a] - ti;
                    re[a] += tr;
                    im[a] += ti;
                }
            }
            len <<= 1;
        }
    }
}

/// One transform direction's Bluestein tables: the chirp sequence and the
/// FFT of the (input-independent) B array.
#[derive(Debug)]
struct BluesteinSide {
    chirp: Vec<(f64, f64)>,
    bre: Vec<f64>,
    bim: Vec<f64>,
}

impl BluesteinSide {
    fn new(n: usize, m: usize, sign: f64, pow2: &Pow2Tables) -> BluesteinSide {
        // Same chirp expression as fft_any: k^2 mod 2n avoids precision
        // loss for large k.
        let chirp: Vec<(f64, f64)> = (0..n)
            .map(|k| {
                let k2 = ((k as u128 * k as u128) % (2 * n as u128)) as f64;
                let ang = sign * PI * k2 / n as f64;
                (ang.cos(), ang.sin())
            })
            .collect();
        let mut bre = vec![0.0; m];
        let mut bim = vec![0.0; m];
        bre[0] = chirp[0].0;
        bim[0] = -chirp[0].1;
        for k in 1..n {
            let (cr, ci) = chirp[k];
            bre[k] = cr;
            bim[k] = -ci;
            bre[m - k] = cr;
            bim[m - k] = -ci;
        }
        pow2.fft(&mut bre, &mut bim, false);
        BluesteinSide { chirp, bre, bim }
    }
}

#[derive(Debug)]
enum PlanKind {
    Empty,
    Pow2(Pow2Tables),
    Bluestein {
        pow2: Pow2Tables,
        fwd: BluesteinSide,
        inv: BluesteinSide,
    },
}

/// Precomputed transform tables for one length.
///
/// Power-of-two lengths hold bit-reversal swaps and butterfly twiddles;
/// other lengths additionally hold both directions' Bluestein chirp tables
/// and B-array spectra (the B array does not depend on the input, so its
/// FFT is paid once per length instead of once per call). Construction is
/// O(m log m); every transform after that skips all trigonometry.
///
/// Obtain plans through [`plan`], which caches them by length.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

impl FftPlan {
    /// Build the tables for length `n`.
    pub fn new(n: usize) -> FftPlan {
        let kind = if n == 0 {
            PlanKind::Empty
        } else if n.is_power_of_two() {
            PlanKind::Pow2(Pow2Tables::new(n))
        } else {
            let m = (2 * n - 1).next_power_of_two();
            let pow2 = Pow2Tables::new(m);
            let fwd = BluesteinSide::new(n, m, -1.0, &pow2);
            let inv = BluesteinSide::new(n, m, 1.0, &pow2);
            PlanKind::Bluestein { pow2, fwd, inv }
        };
        FftPlan { n, kind }
    }

    /// The transform length this plan serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the zero-length plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place radix-2 transform; bit-identical to [`fft_pow2`].
    ///
    /// # Panics
    /// Panics when the plan's length is not a power of two or the slices
    /// do not match it.
    pub fn process_pow2(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        match &self.kind {
            PlanKind::Pow2(t) => t.fft(re, im, inverse),
            _ => panic!(
                "process_pow2 on a plan of non-power-of-two length {}",
                self.n
            ),
        }
    }

    /// Out-of-place transform of any length; bit-identical to [`fft_any`].
    ///
    /// # Panics
    /// Panics when the input length does not match the plan.
    pub fn process_any(
        &self,
        re_in: &[f64],
        im_in: &[f64],
        inverse: bool,
    ) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(re_in.len(), self.n, "re length does not match plan");
        assert_eq!(im_in.len(), self.n, "im length does not match plan");
        match &self.kind {
            PlanKind::Empty => (Vec::new(), Vec::new()),
            PlanKind::Pow2(t) => {
                let mut re = re_in.to_vec();
                let mut im = im_in.to_vec();
                t.fft(&mut re, &mut im, inverse);
                (re, im)
            }
            PlanKind::Bluestein { pow2, fwd, inv } => {
                let side = if inverse { inv } else { fwd };
                let n = self.n;
                let m = pow2.n;

                let mut are = vec![0.0; m];
                let mut aim = vec![0.0; m];
                for k in 0..n {
                    let (cr, ci) = side.chirp[k];
                    are[k] = re_in[k] * cr - im_in[k] * ci;
                    aim[k] = re_in[k] * ci + im_in[k] * cr;
                }
                pow2.fft(&mut are, &mut aim, false);
                for i in 0..m {
                    let r = are[i] * side.bre[i] - aim[i] * side.bim[i];
                    let im_ = are[i] * side.bim[i] + aim[i] * side.bre[i];
                    are[i] = r;
                    aim[i] = im_;
                }
                pow2.fft(&mut are, &mut aim, true);
                let scale = 1.0 / m as f64;
                let mut out_re = Vec::with_capacity(n);
                let mut out_im = Vec::with_capacity(n);
                for k in 0..n {
                    let (cr, ci) = side.chirp[k];
                    let r = are[k] * scale;
                    let i = aim[k] * scale;
                    out_re.push(r * cr - i * ci);
                    out_im.push(r * ci + i * cr);
                }
                (out_re, out_im)
            }
        }
    }
}

/// Plans kept alive at once; enough for every distinct length a repro run
/// touches (a handful of embedding sizes plus the log lengths). On
/// overflow the cache is cleared rather than evicted piecemeal — plans are
/// cheap to rebuild and the limit only guards against unbounded growth
/// under adversarial length patterns.
const PLAN_CACHE_CAP: usize = 64;

/// The process-wide plan for length `n`, building and caching it on first
/// use. Thread-safe; concurrent callers share one plan per length.
pub fn plan(n: usize) -> Arc<FftPlan> {
    static PLANS: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    let cache = PLANS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(p) = map.get(&n) {
        wl_obs::counter!("fft.plan.hit", 1u64);
        return Arc::clone(p);
    }
    wl_obs::counter!("fft.plan.miss", 1u64);
    if map.len() >= PLAN_CACHE_CAP {
        wl_obs::counter!("fft.plan.evictions", map.len() as u64);
        map.clear();
    }
    let p = Arc::new(FftPlan::new(n));
    map.insert(n, Arc::clone(&p));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n^2) DFT for cross-checking.
    fn dft_naive(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut out_re = vec![0.0; n];
        let mut out_im = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = -2.0 * PI * (k * t) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                out_re[k] += re[t] * c - im[t] * s;
                out_im[k] += re[t] * s + im[t] * c;
            }
        }
        (out_re, out_im)
    }

    fn assert_close_vec(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} != {y}");
        }
    }

    #[test]
    fn pow2_matches_naive() {
        let re = [1.0, 2.0, -0.5, 3.0, 0.25, -1.0, 2.5, 0.0];
        let im = [0.5, -1.0, 0.0, 2.0, -0.25, 1.0, 0.0, -2.0];
        let (nre, nim) = dft_naive(&re, &im);
        let mut fre = re.to_vec();
        let mut fim = im.to_vec();
        fft_pow2(&mut fre, &mut fim, false);
        assert_close_vec(&fre, &nre, 1e-9);
        assert_close_vec(&fim, &nim, 1e-9);
    }

    #[test]
    fn bluestein_matches_naive_odd_lengths() {
        for n in [3usize, 5, 7, 12, 13, 100] {
            let re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let im: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() * 0.5).collect();
            let (nre, nim) = dft_naive(&re, &im);
            let (fre, fim) = fft_any(&re, &im, false);
            assert_close_vec(&fre, &nre, 1e-7);
            assert_close_vec(&fim, &nim, 1e-7);
        }
    }

    #[test]
    fn round_trip_identity() {
        for n in [8usize, 15, 33] {
            let re: Vec<f64> = (0..n).map(|i| i as f64 * 0.3 - 1.0).collect();
            let im: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
            let (fre, fim) = fft_any(&re, &im, false);
            let (mut bre, mut bim) = fft_any(&fre, &fim, true);
            for v in &mut bre {
                *v /= n as f64;
            }
            for v in &mut bim {
                *v /= n as f64;
            }
            assert_close_vec(&bre, &re, 1e-8);
            assert_close_vec(&bim, &im, 1e-8);
        }
    }

    #[test]
    fn parseval_theorem() {
        let n = 64;
        let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let (fre, fim) = rfft(&x);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = fre
            .iter()
            .zip(&fim)
            .map(|(r, i)| r * r + i * i)
            .sum::<f64>()
            / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![0.0; 16];
        x[0] = 1.0;
        let (re, im) = rfft(&x);
        for k in 0..16 {
            assert!((re[k] - 1.0).abs() < 1e-12);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 32;
        let freq = 5;
        let x: Vec<f64> = (0..n)
            .map(|t| (2.0 * PI * freq as f64 * t as f64 / n as f64).cos())
            .collect();
        let (re, im) = rfft(&x);
        let mags: Vec<f64> = re
            .iter()
            .zip(&im)
            .map(|(r, i)| (r * r + i * i).sqrt())
            .collect();
        // Energy in bins `freq` and `n - freq` only.
        for (k, m) in mags.iter().enumerate() {
            if k == freq || k == n - freq {
                assert!((m - n as f64 / 2.0).abs() < 1e-9, "bin {k}: {m}");
            } else {
                assert!(*m < 1e-9, "bin {k}: {m}");
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let (re, im) = fft_any(&[], &[], false);
        assert!(re.is_empty() && im.is_empty());
        let (re, im) = fft_any(&[3.5], &[0.0], false);
        assert_eq!(re, vec![3.5]);
        assert_eq!(im, vec![0.0]);
    }

    #[test]
    fn planned_pow2_bit_identical_to_planless() {
        for n in [1usize, 2, 8, 64, 1024] {
            let re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
            let im: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() - 0.25).collect();
            let p = plan(n);
            for inverse in [false, true] {
                let (mut re_a, mut im_a) = (re.clone(), im.clone());
                fft_pow2(&mut re_a, &mut im_a, inverse);
                let (mut re_b, mut im_b) = (re.clone(), im.clone());
                p.process_pow2(&mut re_b, &mut im_b, inverse);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&re_a), bits(&re_b), "n {n} inverse {inverse}");
                assert_eq!(bits(&im_a), bits(&im_b), "n {n} inverse {inverse}");
            }
        }
    }

    #[test]
    fn planned_any_bit_identical_to_planless() {
        for n in [3usize, 5, 7, 12, 13, 100, 1009] {
            let re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let im: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() * 0.5).collect();
            let p = plan(n);
            for inverse in [false, true] {
                let (re_a, im_a) = fft_any(&re, &im, inverse);
                let (re_b, im_b) = p.process_any(&re, &im, inverse);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&re_a), bits(&re_b), "n {n} inverse {inverse}");
                assert_eq!(bits(&im_a), bits(&im_b), "n {n} inverse {inverse}");
            }
        }
    }

    #[test]
    fn plan_cache_returns_shared_plans() {
        let a = plan(48);
        let b = plan(48);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 48);
        assert!(!a.is_empty());
        assert!(plan(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "process_pow2 on a plan of non-power-of-two length")]
    fn pow2_processing_rejects_bluestein_plans() {
        let p = FftPlan::new(12);
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        p.process_pow2(&mut re, &mut im, false);
    }

    #[test]
    fn large_bluestein_precision() {
        // Prime length exercises the full chirp path.
        let n = 1009;
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.01).sin()).collect();
        let (fre, fim) = rfft(&x);
        // Spot-check one bin against the naive sum.
        let k = 17;
        let mut sr = 0.0;
        let mut si = 0.0;
        for (t, &v) in x.iter().enumerate() {
            let ang = -2.0 * PI * (k * t % n) as f64 / n as f64;
            sr += v * ang.cos();
            si += v * ang.sin();
        }
        assert!((fre[k] - sr).abs() < 1e-6, "{} vs {}", fre[k], sr);
        assert!((fim[k] - si).abs() < 1e-6);
    }
}
