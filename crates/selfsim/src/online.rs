//! Online Hurst re-estimation for streaming windows.
//!
//! The streaming co-plot driver re-estimates the Hurst parameter of a
//! growing series (e.g. the cumulative inter-arrival series) after every
//! sealed window. Re-running [`crate::rs::rs_hurst`] from scratch rebuilds
//! the prefix sums its pox plot needs in O(total series) per window;
//! [`OnlineHurst`] instead owns those prefix arrays and extends them in
//! O(new values) per window, handing them to
//! [`crate::rs::pox_plot_with_prefix`]. The appends perform the exact
//! left-to-right accumulation the batch pass does, so every estimate is
//! bit-identical to the batch estimator on the same series (pinned by
//! `online_matches_batch_bit_exact`).
//!
//! The variance-time and periodogram estimators have no reusable prefix
//! structure, but the periodogram's FFT goes through the workspace-wide
//! plan cache (`wl-selfsim::fft`), so repeated re-estimation at recurring
//! (padded) lengths reuses bit-reversal/twiddle tables across windows.

use crate::hurst::{HurstEstimate, HurstEstimator};
use crate::rs::{pox_plot_with_prefix, PoxPoint, DEFAULT_MIN_BLOCK, DEFAULT_POINTS};
use wl_stats::linear_fit;

/// Incrementally maintained series state for repeated Hurst estimation.
#[derive(Debug, Clone, Default)]
pub struct OnlineHurst {
    series: Vec<f64>,
    /// `p[i]` = sum of `series[..i]`; always one longer than `series`.
    p: Vec<f64>,
    /// `q[i]` = sum of squares of `series[..i]`.
    q: Vec<f64>,
}

impl OnlineHurst {
    /// An empty series.
    pub fn new() -> Self {
        OnlineHurst {
            series: Vec::new(),
            p: vec![0.0],
            q: vec![0.0],
        }
    }

    /// Append one window's values, extending the prefix sums in place.
    pub fn extend(&mut self, values: &[f64]) {
        self.series.reserve(values.len());
        self.p.reserve(values.len());
        self.q.reserve(values.len());
        // Safe unwraps: construction seeds both arrays with a leading zero.
        let mut ps = *self.p.last().unwrap();
        let mut qs = *self.q.last().unwrap();
        for &v in values {
            ps += v;
            qs += v * v;
            self.series.push(v);
            self.p.push(ps);
            self.q.push(qs);
        }
        wl_obs::counter!("selfsim.online.appended", values.len() as u64);
    }

    /// Values accumulated so far.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The accumulated series.
    pub fn series(&self) -> &[f64] {
        &self.series
    }

    /// The R/S pox plot over the current series, computed from the
    /// maintained prefix sums (no per-call prefix rebuild).
    pub fn pox_plot(&self, min_block: usize, points: usize) -> Vec<PoxPoint> {
        pox_plot_with_prefix(&self.p, &self.q, min_block, points)
    }

    /// R/S Hurst estimate over the current series; bit-identical to
    /// [`crate::rs::rs_hurst`] on [`Self::series`]. `None` while the series
    /// is too short or degenerate.
    pub fn rs_hurst(&self) -> Option<f64> {
        let points = self.pox_plot(DEFAULT_MIN_BLOCK, DEFAULT_POINTS);
        if points.len() < 3 {
            return None;
        }
        let logs_n: Vec<f64> = points.iter().map(|p| (p.block_size as f64).ln()).collect();
        let logs_rs: Vec<f64> = points.iter().map(|p| p.mean_rs.ln()).collect();
        linear_fit(&logs_n, &logs_rs).map(|f| f.slope)
    }

    /// Run one estimator over the current series. R/S goes through the
    /// prefix-sum fast path; the others delegate to the batch estimator
    /// (the periodogram still benefits from the shared FFT plan cache).
    pub fn estimate(&self, estimator: HurstEstimator) -> Option<f64> {
        match estimator {
            HurstEstimator::RsAnalysis => self.rs_hurst(),
            other => other.estimate(&self.series),
        }
    }

    /// Run all three estimators, as [`crate::hurst::estimate_all`] does.
    pub fn estimate_all(&self) -> Vec<HurstEstimate> {
        HurstEstimator::ALL
            .iter()
            .filter_map(|&e| self.estimate(e).map(|h| HurstEstimate { estimator: e, h }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hurst::estimate_all;
    use crate::rs::rs_hurst;
    use wl_stats::rng::seeded_rng;
    use rand::Rng;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0)
            .collect()
    }

    #[test]
    fn online_matches_batch_bit_exact() {
        // Feed the series in irregular window-sized slices; after every
        // append the online estimate must match the batch estimator on the
        // accumulated prefix bit for bit.
        let x = noise(4096, 7);
        let mut online = OnlineHurst::new();
        let mut fed = 0usize;
        for (i, chunk_len) in [130usize, 64, 257, 512, 1000, 2048].iter().enumerate() {
            let hi = (fed + chunk_len).min(x.len());
            online.extend(&x[fed..hi]);
            fed = hi;
            let batch = rs_hurst(&x[..fed]);
            let got = online.rs_hurst();
            match (got, batch) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits(), "append {i}"),
                (a, b) => assert_eq!(a, b, "append {i}"),
            }
        }
        assert_eq!(online.len(), fed);
    }

    #[test]
    fn all_estimators_agree_with_batch() {
        let x = noise(2048, 11);
        let mut online = OnlineHurst::new();
        online.extend(&x);
        let batch = estimate_all(&x);
        let streamed = online.estimate_all();
        assert_eq!(batch.len(), streamed.len());
        for (b, s) in batch.iter().zip(&streamed) {
            assert_eq!(b.estimator, s.estimator);
            assert_eq!(b.h.to_bits(), s.h.to_bits());
        }
    }

    #[test]
    fn short_series_yields_none() {
        let mut online = OnlineHurst::new();
        assert!(online.is_empty());
        assert_eq!(online.rs_hurst(), None);
        online.extend(&[1.0, 2.0, 3.0]);
        assert_eq!(online.rs_hurst(), None);
        assert!(online.estimate_all().is_empty());
    }

    #[test]
    fn extend_in_pieces_equals_extend_at_once() {
        let x = noise(1024, 3);
        let mut a = OnlineHurst::new();
        a.extend(&x);
        let mut b = OnlineHurst::new();
        for chunk in x.chunks(100) {
            b.extend(chunk);
        }
        assert_eq!(a.series(), b.series());
        assert_eq!(
            a.rs_hurst().map(f64::to_bits),
            b.rs_hurst().map(f64::to_bits)
        );
    }
}
