//! A uniform interface over the three Hurst estimators of Table 3.

use crate::periodogram::periodogram_hurst;
use crate::rs::rs_hurst;
use crate::vartime::variance_time_hurst;

/// Which estimator to apply (the three columns per variable in Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HurstEstimator {
    /// Rescaled-range (pox plot) analysis.
    RsAnalysis,
    /// Variance-time plot.
    VarianceTime,
    /// Low-frequency periodogram slope.
    Periodogram,
}

impl HurstEstimator {
    /// All three, in Table 3 column order.
    pub const ALL: [HurstEstimator; 3] = [
        HurstEstimator::RsAnalysis,
        HurstEstimator::VarianceTime,
        HurstEstimator::Periodogram,
    ];

    /// Table 3's column labels.
    pub fn label(&self) -> &'static str {
        match self {
            HurstEstimator::RsAnalysis => "R/S",
            HurstEstimator::VarianceTime => "V-T",
            HurstEstimator::Periodogram => "Per.",
        }
    }

    /// Estimate the Hurst parameter of a series. `None` when the series is
    /// too short or degenerate for this estimator.
    pub fn estimate(&self, x: &[f64]) -> Option<f64> {
        match self {
            HurstEstimator::RsAnalysis => rs_hurst(x),
            HurstEstimator::VarianceTime => variance_time_hurst(x),
            HurstEstimator::Periodogram => periodogram_hurst(x),
        }
    }
}

/// A Hurst estimate with its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HurstEstimate {
    pub estimator: HurstEstimator,
    pub h: f64,
}

/// Run all three estimators on one series.
pub fn estimate_all(x: &[f64]) -> Vec<HurstEstimate> {
    HurstEstimator::ALL
        .iter()
        .filter_map(|&e| {
            e.estimate(x).map(|h| HurstEstimate { estimator: e, h })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnDaviesHarte;
    use wl_stats::rng::seeded_rng;

    /// All three estimators must recover the planted H of exact fGn within
    /// a tolerance — this is the cross-validation experiment backing the
    /// paper's Table 3 methodology.
    #[test]
    fn estimators_recover_planted_hurst() {
        let n = 16384;
        for &h in &[0.5, 0.6, 0.7, 0.8, 0.9] {
            let gen = FgnDaviesHarte::new(h, n).unwrap();
            let mut rng = seeded_rng(1000 + (h * 100.0) as u64);
            let x = gen.generate(&mut rng);
            for est in HurstEstimator::ALL {
                let got = est.estimate(&x).unwrap();
                // R/S is known to be biased toward 0.5 at strong H; allow a
                // generous but meaningful band.
                let tol = match est {
                    HurstEstimator::RsAnalysis => 0.15,
                    _ => 0.08,
                };
                assert!(
                    (got - h).abs() < tol,
                    "{} at H={h}: estimated {got}",
                    est.label()
                );
            }
        }
    }

    #[test]
    fn estimate_all_runs_every_estimator() {
        let gen = FgnDaviesHarte::new(0.7, 4096).unwrap();
        let x = gen.generate(&mut seeded_rng(99));
        let all = estimate_all(&x);
        assert_eq!(all.len(), 3);
        let labels: Vec<&str> = all.iter().map(|e| e.estimator.label()).collect();
        assert_eq!(labels, vec!["R/S", "V-T", "Per."]);
    }

    #[test]
    fn short_series_yield_no_estimates() {
        assert!(estimate_all(&[1.0, 2.0]).is_empty());
    }

    #[test]
    fn labels_are_table3_names() {
        assert_eq!(HurstEstimator::RsAnalysis.label(), "R/S");
        assert_eq!(HurstEstimator::VarianceTime.label(), "V-T");
        assert_eq!(HurstEstimator::Periodogram.label(), "Per.");
    }
}
