//! Exact fractional Gaussian noise (fGn) generators.
//!
//! fGn is *the* reference self-similar process: a stationary Gaussian series
//! with autocovariance
//!
//! ```text
//! gamma(k) = 0.5 (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H})
//! ```
//!
//! whose aggregated variance decays exactly like `m^{2H-2}`. Two exact
//! generators are provided:
//!
//! * [`FgnDaviesHarte`] — circulant embedding + FFT, O(n log n), the
//!   workhorse for long series;
//! * [`FgnHosking`] — the Durbin-Levinson / Hosking recursion, O(n^2) but
//!   streaming and embedding-free, used to cross-validate Davies-Harte and
//!   for short series.
//!
//! The log synthesizer uses fGn to give production-log stand-ins the
//! long-range dependence the paper measures in Table 3, and the estimator
//! tests use it as ground truth.

use crate::fft::{self, FftPlan};
use rand::RngCore;
use std::sync::Arc;
use wl_stats::dist::Normal;

/// The fGn autocovariance `gamma(k)` for unit-variance noise.
///
/// # Panics
/// Panics unless `0 < h < 1`.
pub fn fgn_autocovariance(h: f64, k: usize) -> f64 {
    assert!(h > 0.0 && h < 1.0, "H must be in (0,1), got {h}");
    if k == 0 {
        return 1.0;
    }
    let k = k as f64;
    let two_h = 2.0 * h;
    0.5 * ((k + 1.0).powf(two_h) - 2.0 * k.powf(two_h) + (k - 1.0).powf(two_h))
}

/// Davies-Harte exact fGn generator: precomputes the circulant-embedding
/// eigenvalues for a fixed length, then generates independent sample paths.
#[derive(Debug, Clone)]
pub struct FgnDaviesHarte {
    h: f64,
    n: usize,
    /// sqrt(lambda_j / m), the per-bin amplitude.
    amps: Vec<f64>,
    /// Embedding size (power of two, >= 2n).
    m: usize,
    /// Shared FFT plan for the embedding size; every generated path reuses
    /// its precomputed tables.
    plan: Arc<FftPlan>,
}

impl FgnDaviesHarte {
    /// Prepare a generator for paths of length `n` with Hurst parameter
    /// `h` in `(0, 1)`.
    ///
    /// Returns an error when the circulant embedding has (numerically)
    /// negative eigenvalues — which does not happen for fGn's covariance,
    /// but the check guards the math.
    ///
    /// # Panics
    /// Panics for `n == 0` or `h` outside `(0, 1)`.
    pub fn new(h: f64, n: usize) -> Result<Self, String> {
        assert!(n > 0, "path length must be positive");
        assert!(h > 0.0 && h < 1.0, "H must be in (0,1), got {h}");

        // Power-of-two embedding size m >= 2n keeps the FFT radix-2.
        let m = (2 * n).next_power_of_two();
        let half = m / 2;
        // Circulant first row: gamma(0..=half), then mirrored.
        let mut c = vec![0.0; m];
        for (k, slot) in c.iter_mut().enumerate().take(half + 1) {
            *slot = fgn_autocovariance(h, k);
        }
        for k in 1..half {
            c[m - k] = c[k];
        }
        // Eigenvalues = FFT of the first row (real by symmetry).
        let plan = fft::plan(m);
        let mut re = c;
        let mut im = vec![0.0; m];
        plan.process_pow2(&mut re, &mut im, false);
        let mut amps = Vec::with_capacity(m);
        for (j, &lambda) in re.iter().enumerate() {
            if lambda < -1e-8 {
                return Err(format!(
                    "negative circulant eigenvalue {lambda} at bin {j} (H = {h})"
                ));
            }
            amps.push((lambda.max(0.0) / m as f64).sqrt());
        }
        Ok(FgnDaviesHarte { h, n, amps, m, plan })
    }

    /// The Hurst parameter.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// The path length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the configured length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Generate one exact fGn path of length `n` (unit variance, zero mean).
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        let m = self.m;
        let half = m / 2;
        let mut re = vec![0.0; m];
        let mut im = vec![0.0; m];

        // Hermitian-symmetric complex Gaussian spectrum.
        re[0] = self.amps[0] * Normal::sample_standard(rng) * (2.0f64).sqrt();
        re[half] = self.amps[half] * Normal::sample_standard(rng) * (2.0f64).sqrt();
        for j in 1..half {
            let zr = Normal::sample_standard(rng);
            let zi = Normal::sample_standard(rng);
            re[j] = self.amps[j] * zr;
            im[j] = self.amps[j] * zi;
            re[m - j] = re[j];
            im[m - j] = -im[j];
        }

        self.plan.process_pow2(&mut re, &mut im, false);
        // Real part of the first n entries, scaled: the construction above
        // makes Var = 2 per sample (both halves contribute), so divide by
        // sqrt(2).
        let scale = 1.0 / (2.0f64).sqrt();
        re.truncate(self.n);
        for v in &mut re {
            *v *= scale;
        }
        re
    }
}

/// Hosking's exact sequential fGn generator (Durbin-Levinson recursion).
#[derive(Debug, Clone, Copy)]
pub struct FgnHosking {
    h: f64,
}

impl FgnHosking {
    /// Create for a Hurst parameter in `(0, 1)`.
    ///
    /// # Panics
    /// Panics for `h` outside `(0, 1)`.
    pub fn new(h: f64) -> Self {
        assert!(h > 0.0 && h < 1.0, "H must be in (0,1), got {h}");
        FgnHosking { h }
    }

    /// The Hurst parameter.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Generate an exact path of length `n` (unit variance, zero mean).
    /// O(n^2) time, O(n) space.
    pub fn generate(&self, rng: &mut dyn RngCore, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let gamma: Vec<f64> = (0..n).map(|k| fgn_autocovariance(self.h, k)).collect();

        let mut x = Vec::with_capacity(n);
        x.push(Normal::sample_standard(rng)); // gamma(0) = 1

        // Durbin-Levinson state.
        let mut phi: Vec<f64> = Vec::new(); // phi_{t,k}, k = 1..=t
        let mut v = 1.0; // prediction error variance

        for t in 1..n {
            // New reflection coefficient phi_{t,t}.
            let mut acc = gamma[t];
            for (k, &p) in phi.iter().enumerate() {
                acc -= p * gamma[t - 1 - k];
            }
            let kappa = acc / v;
            // Update the coefficient vector: phi'_k = phi_k - kappa *
            // phi_{t-1-k} (reversed), then append kappa.
            let prev = phi.clone();
            for (k, p) in phi.iter_mut().enumerate() {
                *p -= kappa * prev[prev.len() - 1 - k];
            }
            phi.push(kappa);
            v *= 1.0 - kappa * kappa;
            debug_assert!(v > 0.0, "prediction variance must stay positive");

            // Conditional mean of X_t given the past.
            let mean: f64 = phi
                .iter()
                .enumerate()
                .map(|(k, &p)| p * x[t - 1 - k])
                .sum();
            x.push(mean + v.max(0.0).sqrt() * Normal::sample_standard(rng));
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wl_stats::rng::seeded_rng;

    fn sample_autocov(x: &[f64], k: usize) -> f64 {
        let n = x.len();
        let mean = x.iter().sum::<f64>() / n as f64;
        (0..n - k)
            .map(|i| (x[i] - mean) * (x[i + k] - mean))
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn autocovariance_h_half_is_white() {
        assert!((fgn_autocovariance(0.5, 0) - 1.0).abs() < 1e-12);
        for k in 1..10 {
            assert!(fgn_autocovariance(0.5, k).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn autocovariance_positive_and_decaying_for_persistent_h() {
        let h = 0.8;
        let mut prev = fgn_autocovariance(h, 1);
        assert!(prev > 0.0);
        for k in 2..50 {
            let g = fgn_autocovariance(h, k);
            assert!(g > 0.0 && g < prev, "k = {k}");
            prev = g;
        }
    }

    #[test]
    fn autocovariance_negative_for_antipersistent_h() {
        assert!(fgn_autocovariance(0.2, 1) < 0.0);
    }

    #[test]
    fn davies_harte_matches_target_autocovariance() {
        let gen = FgnDaviesHarte::new(0.8, 16384).unwrap();
        let mut rng = seeded_rng(31);
        let x = gen.generate(&mut rng);
        assert_eq!(x.len(), 16384);
        // Variance near 1.
        let var = sample_autocov(&x, 0);
        assert!((var - 1.0).abs() < 0.15, "var = {var}");
        // Lag-1 and lag-4 autocovariances near theory.
        for k in [1usize, 4] {
            let got = sample_autocov(&x, k) / var;
            let want = fgn_autocovariance(0.8, k);
            assert!(
                (got - want).abs() < 0.08,
                "lag {k}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn hosking_matches_target_autocovariance() {
        let gen = FgnHosking::new(0.75);
        let mut rng = seeded_rng(32);
        let x = gen.generate(&mut rng, 4096);
        let var = sample_autocov(&x, 0);
        assert!((var - 1.0).abs() < 0.2, "var = {var}");
        let got = sample_autocov(&x, 1) / var;
        let want = fgn_autocovariance(0.75, 1);
        assert!((got - want).abs() < 0.1, "{got} vs {want}");
    }

    #[test]
    fn h_half_paths_look_iid() {
        let gen = FgnDaviesHarte::new(0.5, 8192).unwrap();
        let mut rng = seeded_rng(33);
        let x = gen.generate(&mut rng);
        let var = sample_autocov(&x, 0);
        let r1 = sample_autocov(&x, 1) / var;
        assert!(r1.abs() < 0.05, "lag-1 corr = {r1}");
    }

    #[test]
    fn generators_agree_statistically() {
        // Same H: aggregated variances should decay identically.
        let h = 0.7;
        let mut rng = seeded_rng(34);
        let dh = FgnDaviesHarte::new(h, 8192).unwrap().generate(&mut rng);
        let hos = FgnHosking::new(h).generate(&mut rng, 2048);
        let ratio = |x: &[f64]| {
            let v1 = sample_autocov(x, 0);
            let agg = crate::aggregate::aggregate_series(x, 16);
            let v16 = {
                let m = agg.iter().sum::<f64>() / agg.len() as f64;
                agg.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / agg.len() as f64
            };
            v16 / v1
        };
        // Theory: Var(X^(m))/Var(X) = m^{2H-2} = 16^{-0.6} ~ 0.189.
        let want = 16.0f64.powf(2.0 * h - 2.0);
        let r1 = ratio(&dh);
        let r2 = ratio(&hos);
        assert!((r1 - want).abs() / want < 0.45, "DH ratio {r1} vs {want}");
        assert!((r2 - want).abs() / want < 0.45, "Hosking ratio {r2} vs {want}");
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = FgnDaviesHarte::new(0.6, 256).unwrap();
        let a = gen.generate(&mut seeded_rng(35));
        let b = gen.generate(&mut seeded_rng(35));
        assert_eq!(a, b);
    }

    #[test]
    fn hosking_empty_path() {
        assert!(FgnHosking::new(0.7)
            .generate(&mut seeded_rng(36), 0)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "H must be in (0,1)")]
    fn invalid_h_panics() {
        FgnHosking::new(1.0);
    }
}
