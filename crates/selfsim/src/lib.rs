//! Self-similarity analysis of workload time series (paper section 9 and
//! appendix).
//!
//! A stochastic process is (second-order) self-similar when its aggregated
//! series `X^(m)` — block averages over windows of size `m` — decay in
//! variance like `m^(-beta)` with `0 < beta < 2`, equivalently when its
//! autocorrelations decay so slowly that they are non-summable (long-range
//! dependence). The Hurst parameter `H = 1 - beta/2` quantifies the effect:
//! `H = 0.5` is short-range (white-noise-like) behaviour, `H -> 1` is
//! strong self-similarity.
//!
//! The paper estimates `H` for four per-job series of every workload with
//! three classical estimators, all implemented here:
//!
//! * **R/S analysis** ([`rs`]): the rescaled adjusted range grows like
//!   `n^H` (the Hurst effect); the pox-plot slope estimates `H`.
//! * **Variance-time plots** ([`vartime`]): the slope of
//!   `log Var(X^(m))` against `log m` is `-beta`.
//! * **Periodogram analysis** ([`periodogram`]): near the origin the
//!   log-log periodogram has slope `1 - 2H`.
//!
//! Supporting substrate:
//!
//! * [`fft`] — radix-2 + Bluestein FFT (the periodogram's engine),
//! * [`aggregate`] — block aggregation and autocorrelation,
//! * [`fgn`] — exact fractional Gaussian noise generators (Davies-Harte
//!   and Hosking), used to validate the estimators against known `H` and to
//!   inject long-range dependence into synthesized logs,
//! * [`hurst`] — a uniform interface over the three estimators.

pub mod aggregate;
pub mod fft;
pub mod fgn;
pub mod hurst;
pub mod online;
pub mod periodogram;
pub mod rs;
pub mod vartime;

pub use aggregate::{aggregate_series, autocorrelation};
pub use fgn::{FgnDaviesHarte, FgnHosking};
pub use hurst::{HurstEstimate, HurstEstimator};
pub use online::OnlineHurst;
pub use periodogram::periodogram_hurst;
pub use rs::{pox_plot_with_prefix, rs_hurst};
pub use vartime::variance_time_hurst;
