//! Periodogram Hurst estimator — appendix Eqs. 18-19.
//!
//! The periodogram of a long-range dependent series diverges like
//! `|omega|^(1-2H)` near the origin, so the slope of the log-log
//! periodogram over the lowest frequencies estimates `1 - 2H`.

use crate::fft::rfft;
use wl_stats::linear_fit;

/// The periodogram `Per(omega_i) = |X(omega_i)|^2 * 2/N` at the Fourier
/// frequencies `omega_i = 2 pi i / N` for `i = 1 .. N/2` (the zero
/// frequency is excluded: the series is centered first, making it zero).
pub fn periodogram(x: &[f64]) -> Vec<(f64, f64)> {
    let n = x.len();
    if n < 4 {
        return Vec::new();
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = x.iter().map(|v| v - mean).collect();
    let (re, im) = rfft(&centered);
    (1..=n / 2)
        .map(|i| {
            let omega = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            let power = (re[i] * re[i] + im[i] * im[i]) * 2.0 / n as f64;
            (omega, power)
        })
        .collect()
}

/// Estimate the Hurst parameter from the low-frequency periodogram slope:
/// fit `log Per(omega)` against `log omega` over the lowest `fraction` of
/// frequencies (the paper and the literature use ~10%), then
/// `H = (1 - slope) / 2`, clamped to `[0, 1]`.
///
/// Returns `None` for series too short to yield 3 usable frequencies.
pub fn periodogram_hurst_with_fraction(x: &[f64], fraction: f64) -> Option<f64> {
    assert!(fraction > 0.0 && fraction <= 1.0, "bad fraction {fraction}");
    let per = periodogram(x);
    let keep = ((per.len() as f64 * fraction).ceil() as usize).min(per.len());
    if keep < 3 {
        return None;
    }
    let mut logs_w = Vec::with_capacity(keep);
    let mut logs_p = Vec::with_capacity(keep);
    for &(w, p) in per.iter().take(keep) {
        if p > 0.0 {
            logs_w.push(w.ln());
            logs_p.push(p.ln());
        }
    }
    if logs_w.len() < 3 {
        return None;
    }
    let fit = linear_fit(&logs_w, &logs_p)?;
    Some(((1.0 - fit.slope) / 2.0).clamp(0.0, 1.0))
}

/// [`periodogram_hurst_with_fraction`] at the conventional 10%.
pub fn periodogram_hurst(x: &[f64]) -> Option<f64> {
    periodogram_hurst_with_fraction(x, 0.10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wl_stats::rng::seeded_rng;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0)
            .collect()
    }

    #[test]
    fn periodogram_total_power_matches_energy() {
        // Parseval: sum_k |X_k|^2 = N * energy of the centered series. With
        // X_0 = 0 and conjugate-symmetric halves, summing i = 1..N/2 with
        // the 2/N periodogram factor recovers the full centered energy.
        let x = white_noise(1024, 21);
        let per = periodogram(&x);
        let total: f64 = per.iter().map(|&(_, p)| p).sum();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let energy: f64 = x.iter().map(|v| (v - mean) * (v - mean)).sum();
        assert!((total / energy - 1.0).abs() < 0.01, "total {total} vs energy {energy}");
    }

    #[test]
    fn white_noise_scores_near_half() {
        let x = white_noise(8192, 22);
        let h = periodogram_hurst(&x).unwrap();
        assert!((0.35..0.65).contains(&h), "H = {h}");
    }

    #[test]
    fn random_walk_scores_high() {
        let noise = white_noise(8192, 23);
        let mut acc = 0.0;
        let walk: Vec<f64> = noise
            .iter()
            .map(|v| {
                acc += v;
                acc
            })
            .collect();
        let h = periodogram_hurst(&walk).unwrap();
        assert!(h > 0.85, "H = {h}");
    }

    #[test]
    fn frequencies_are_increasing_positive() {
        let x = white_noise(512, 24);
        let per = periodogram(&x);
        assert_eq!(per.len(), 256);
        for w in per.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(per[0].0 > 0.0);
        assert!(per.last().unwrap().0 <= std::f64::consts::PI + 1e-12);
    }

    #[test]
    fn non_power_of_two_lengths_work() {
        let x = white_noise(1000, 25);
        let h = periodogram_hurst(&x);
        assert!(h.is_some());
        let x = white_noise(777, 26);
        assert!(periodogram_hurst(&x).is_some());
    }

    #[test]
    fn short_series_none() {
        assert!(periodogram_hurst(&[1.0, 2.0, 3.0]).is_none());
        assert!(periodogram_hurst(&white_noise(16, 27)).is_none());
    }

    #[test]
    #[should_panic(expected = "bad fraction")]
    fn zero_fraction_panics() {
        periodogram_hurst_with_fraction(&[1.0; 100], 0.0);
    }
}
