//! Block aggregation and autocorrelation (appendix Eqs. 5-10).

/// The aggregated series `X^(m)`: averages of non-overlapping blocks of
/// size `m` (Eq. 8). A trailing partial block is discarded.
///
/// # Panics
/// Panics when `m == 0`.
pub fn aggregate_series(x: &[f64], m: usize) -> Vec<f64> {
    assert!(m > 0, "block size must be positive");
    x.chunks_exact(m)
        .map(|block| block.iter().sum::<f64>() / m as f64)
        .collect()
}

/// Sample autocorrelation function `r(k)` for `k = 0..=max_lag` (Eq. 5),
/// using the biased (divide by n) covariance convention that keeps the
/// sequence positive semidefinite.
///
/// Returns an empty vector when the series is constant or shorter than 2.
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let var: f64 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return Vec::new();
    }
    (0..=max_lag.min(n - 1))
        .map(|k| {
            let cov: f64 = (0..n - k)
                .map(|i| (x[i] - mean) * (x[i + k] - mean))
                .sum::<f64>()
                / n as f64;
            cov / var
        })
        .collect()
}

/// A crude long-range-dependence check: fits `log r(k) ~ -beta log k` over
/// positive autocorrelations at lags in `[lo, hi]` and reports the implied
/// `beta` (Eq. 6). Returns `None` when fewer than 3 usable lags exist.
pub fn lrd_beta(x: &[f64], lo: usize, hi: usize) -> Option<f64> {
    let acf = autocorrelation(x, hi);
    let mut logs_k = Vec::new();
    let mut logs_r = Vec::new();
    let top = hi.min(acf.len().saturating_sub(1));
    for (k, &r) in acf.iter().enumerate().take(top + 1).skip(lo.max(1)) {
        if r > 0.0 {
            logs_k.push((k as f64).ln());
            logs_r.push(r.ln());
        }
    }
    if logs_k.len() < 3 {
        return None;
    }
    wl_stats::linear_fit(&logs_k, &logs_r).map(|f| -f.slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_block_means() {
        let x = [1.0, 3.0, 5.0, 7.0, 100.0];
        assert_eq!(aggregate_series(&x, 2), vec![2.0, 6.0]); // partial dropped
        assert_eq!(aggregate_series(&x, 1), x.to_vec());
        assert_eq!(aggregate_series(&x, 5), vec![23.2]);
        assert!(aggregate_series(&x, 6).is_empty());
    }

    #[test]
    fn aggregation_preserves_mean_of_complete_blocks() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let agg = aggregate_series(&x, 10);
        let m1 = x.iter().sum::<f64>() / 100.0;
        let m2 = agg.iter().sum::<f64>() / 10.0;
        assert!((m1 - m2).abs() < 1e-9);
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let acf = autocorrelation(&x, 3);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        assert!(acf.iter().all(|&r| (-1.0..=1.0).contains(&r)));
    }

    #[test]
    fn alternating_series_has_negative_lag_one() {
        let x: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let acf = autocorrelation(&x, 2);
        assert!(acf[1] < -0.9);
        assert!(acf[2] > 0.9);
    }

    #[test]
    fn trending_series_has_high_positive_acf() {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let acf = autocorrelation(&x, 5);
        assert!(acf[1] > 0.9);
    }

    #[test]
    fn constant_series_gives_empty_acf() {
        assert!(autocorrelation(&[2.0; 10], 3).is_empty());
        assert!(autocorrelation(&[1.0], 3).is_empty());
    }

    #[test]
    fn lrd_beta_on_power_law_acf() {
        // Construct a series with slowly decaying ACF by cumulative
        // aggregation of a trend + noise mixture; just assert the function
        // returns a finite, plausible beta on a trending series.
        let x: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.03).sin() + i as f64 * 0.002)
            .collect();
        let beta = lrd_beta(&x, 1, 50);
        assert!(beta.is_some());
        assert!(beta.unwrap().is_finite());
    }

    #[test]
    fn lrd_beta_requires_enough_lags() {
        assert!(lrd_beta(&[1.0, 2.0], 1, 5).is_none());
    }
}
