//! Variance-time plot estimator — appendix Eqs. 16-17.
//!
//! Self-similar processes satisfy `Var(X^(m)) ∝ m^(-beta)`: aggregating a
//! short-range-dependent series over blocks of `m` shrinks the variance like
//! `1/m` (beta = 1), while long-range dependence slows the decay
//! (0 < beta < 1). Plotting `log Var(X^(m))` against `log m` and fitting a
//! line gives `-beta` as the slope and `H = 1 - beta/2`.

use crate::aggregate::aggregate_series;
use wl_stats::linear_fit;

/// Number of plot points [`variance_time_hurst`] requests.
pub const DEFAULT_POINTS: usize = 20;
/// Minimum blocks per aggregation level for [`variance_time_hurst`].
pub const DEFAULT_MIN_BLOCKS: usize = 5;

/// One point of the variance-time plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VtPoint {
    pub m: usize,
    pub variance: f64,
    /// Number of aggregated blocks behind the variance estimate.
    pub blocks: usize,
}

/// Compute the variance-time plot over logarithmically spaced aggregation
/// levels, keeping only levels with at least `min_blocks` blocks.
///
/// Aggregation is pyramidal: each level `m` aggregates from the coarsest
/// earlier level whose `m` divides it (falling back to the raw series),
/// instead of always re-averaging the raw series. Block counts are
/// unaffected — `floor(floor(n/d) / (m/d)) = floor(n/m)` — and block means
/// of complete blocks are the same sums grouped differently, so the plot
/// agrees with direct aggregation to rounding error while touching far
/// fewer elements at the large-`m` levels.
pub fn variance_time_plot(x: &[f64], points: usize, min_blocks: usize) -> Vec<VtPoint> {
    let n = x.len();
    let min_blocks = min_blocks.max(2);
    if n < 2 * min_blocks || points == 0 {
        return Vec::new();
    }
    let max_m = n / min_blocks;
    let ratio = (max_m as f64).powf(1.0 / (points.max(2) - 1) as f64);

    // Aggregated series computed so far, ascending in m; bases for later
    // levels. The raw series is the implicit m = 1 base.
    let mut pyramid: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut out: Vec<VtPoint> = Vec::new();
    let mut m_f: f64 = 1.0;
    for _ in 0..points {
        let m = (m_f.round() as usize).clamp(1, max_m);
        if out.last().map(|p| p.m) != Some(m) && pyramid.last().map(|(pm, _)| *pm) != Some(m)
        {
            let agg = if m == 1 {
                x.to_vec()
            } else {
                let (d, base) = pyramid
                    .iter()
                    .rev()
                    .find(|(d, _)| *d > 1 && m.is_multiple_of(*d))
                    .map(|(d, v)| (*d, v.as_slice()))
                    .unwrap_or((1, x));
                aggregate_series(base, m / d)
            };
            if agg.len() >= min_blocks {
                let var = wl_stats::variance(&agg);
                if var.is_finite() && var > 0.0 {
                    out.push(VtPoint {
                        m,
                        variance: var,
                        blocks: agg.len(),
                    });
                }
            }
            pyramid.push((m, agg));
        }
        m_f *= ratio;
    }
    wl_obs::counter!("selfsim.vt.calls", 1u64);
    wl_obs::counter!("selfsim.vt.levels", out.len() as u64);
    wl_obs::counter!(
        "selfsim.vt.blocks",
        out.iter().map(|p| p.blocks as u64).sum::<u64>()
    );
    out
}

/// Estimate the Hurst parameter from the variance-time plot slope:
/// `H = 1 - beta/2` where the fitted slope is `-beta`. Returns `None` when
/// fewer than 3 usable aggregation levels exist.
///
/// The estimate is clamped to `[0, 1]` (slopes outside `[-2, 0]` are
/// outside the self-similar regime but arise on short noisy series).
pub fn variance_time_hurst(x: &[f64]) -> Option<f64> {
    let points = variance_time_plot(x, DEFAULT_POINTS, DEFAULT_MIN_BLOCKS);
    if points.len() < 3 {
        return None;
    }
    let logs_m: Vec<f64> = points.iter().map(|p| (p.m as f64).ln()).collect();
    let logs_v: Vec<f64> = points.iter().map(|p| p.variance.ln()).collect();
    let fit = linear_fit(&logs_m, &logs_v)?;
    let beta = -fit.slope;
    Some((1.0 - beta / 2.0).clamp(0.0, 1.0))
}

/// The pre-pyramid plot, kept as the test oracle: every level aggregates
/// the raw series from scratch.
#[cfg(test)]
pub(crate) fn variance_time_plot_naive(
    x: &[f64],
    points: usize,
    min_blocks: usize,
) -> Vec<VtPoint> {
    let n = x.len();
    let min_blocks = min_blocks.max(2);
    if n < 2 * min_blocks || points == 0 {
        return Vec::new();
    }
    let max_m = n / min_blocks;
    let ratio = (max_m as f64).powf(1.0 / (points.max(2) - 1) as f64);
    let mut out: Vec<VtPoint> = Vec::new();
    let mut m_f: f64 = 1.0;
    for _ in 0..points {
        let m = (m_f.round() as usize).clamp(1, max_m);
        if out.last().map(|p| p.m) != Some(m) {
            let agg = aggregate_series(x, m);
            if agg.len() >= min_blocks {
                let var = wl_stats::variance(&agg);
                if var.is_finite() && var > 0.0 {
                    out.push(VtPoint {
                        m,
                        variance: var,
                        blocks: agg.len(),
                    });
                }
            }
        }
        m_f *= ratio;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use wl_stats::rng::seeded_rng;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0)
            .collect()
    }

    #[test]
    fn white_noise_beta_one() {
        // Var(X^(m)) = sigma^2 / m exactly in expectation: slope -1, H 0.5.
        let x = white_noise(16384, 11);
        let h = variance_time_hurst(&x).unwrap();
        assert!((h - 0.5).abs() < 0.08, "H = {h}");
    }

    #[test]
    fn variance_halves_when_aggregating_iid_pairs() {
        let x = white_noise(65536, 12);
        let plot = variance_time_plot(&x, 20, 5);
        let v1 = plot.iter().find(|p| p.m == 1).unwrap().variance;
        let v2 = plot
            .iter()
            .find(|p| p.m >= 2 && p.m <= 3)
            .unwrap();
        let expect = v1 / v2.m as f64;
        assert!(
            (v2.variance - expect).abs() / expect < 0.15,
            "Var(X^({})) = {} vs {}",
            v2.m,
            v2.variance,
            expect
        );
    }

    #[test]
    fn persistent_series_scores_high() {
        // Long blocks of constant sign decay in variance much slower than
        // 1/m.
        let mut rng = seeded_rng(13);
        let mut x = Vec::with_capacity(16384);
        while x.len() < 16384 {
            let level: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            // Pareto-ish heavy block length.
            let len = (4.0 / rng.gen::<f64>().powf(0.8)) as usize;
            for _ in 0..len.min(16384 - x.len()) {
                x.push(level + 0.1 * (rng.gen::<f64>() - 0.5));
            }
        }
        let h = variance_time_hurst(&x).unwrap();
        assert!(h > 0.6, "H = {h}");
    }

    #[test]
    fn plot_is_monotone_in_m() {
        let x = white_noise(8192, 14);
        let plot = variance_time_plot(&x, 15, 5);
        for w in plot.windows(2) {
            assert!(w[0].m < w[1].m);
            assert!(w[1].blocks >= 5);
        }
    }

    #[test]
    fn short_series_is_none() {
        assert!(variance_time_hurst(&[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn estimate_clamped_to_unit_interval() {
        // A strongly trending series pushes beta towards 0 (H -> 1), the
        // clamp must keep it in range.
        let x: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let h = variance_time_hurst(&x).unwrap();
        assert!((0.0..=1.0).contains(&h));
        assert!(h > 0.9);
    }

    /// Point-by-point agreement between the pyramid plot and the naive
    /// oracle, to 1e-12 relative.
    fn assert_matches_oracle(x: &[f64], points: usize, min_blocks: usize) {
        let fast = variance_time_plot(x, points, min_blocks);
        let naive = variance_time_plot_naive(x, points, min_blocks);
        assert_eq!(fast.len(), naive.len());
        for (f, o) in fast.iter().zip(&naive) {
            assert_eq!(f.m, o.m);
            assert_eq!(f.blocks, o.blocks);
            let rel = (f.variance - o.variance).abs() / o.variance.abs().max(1e-300);
            assert!(
                rel <= 1e-12,
                "m {}: {} vs {} (rel {rel:e})",
                f.m,
                f.variance,
                o.variance
            );
        }
    }

    #[test]
    fn pyramid_matches_naive_on_noise_and_walks() {
        for seed in 0..4 {
            let noise = white_noise(4096 + 111 * seed as usize, 40 + seed);
            assert_matches_oracle(&noise, 20, 5);
            let mut acc = 0.0;
            let walk: Vec<f64> = noise
                .iter()
                .map(|v| {
                    acc += v;
                    acc
                })
                .collect();
            assert_matches_oracle(&walk, 15, 3);
        }
    }

    proptest! {
        #[test]
        fn pyramid_matches_naive_on_random_series(
            xs in proptest::collection::vec(-1e3f64..1e3, 32..400),
            points in 1usize..30,
            min_blocks in 2usize..8,
        ) {
            assert_matches_oracle(&xs, points, min_blocks);
        }
    }
}
