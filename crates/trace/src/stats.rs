//! The derived workload characteristics of Table 1 / Table 2.
//!
//! Every variable the paper measures on a workload is computed here from the
//! normalized record stream plus machine metadata — the computation never
//! sees the on-disk trace format. Missing inputs produce `None`
//! (the paper's "N/A" cells); the paper's imputation rules (e.g. using
//! runtime load when CPU load is missing) are applied by analysis code, not
//! here, so the raw facts stay inspectable.

use wl_stats::order::Percentiles;

use crate::record::JobStatus;
use crate::trace::NormalizedTrace;

/// The width of the paper's preferred order-statistic interval: the 90%
/// interval is the 95th minus the 5th percentile.
pub const INTERVAL_WIDTH: f64 = 0.90;

/// The machine size jobs are renormalized to for the "normalized degree of
/// parallelism" variables (paper section 3, variable 11).
pub const NORMALIZED_MACHINE: f64 = 128.0;

/// One of the paper's workload variables, in Table 1 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variable {
    /// MP — processors in the system.
    MachineProcessors,
    /// SF — scheduler flexibility rank (1..=3).
    SchedulerFlexibility,
    /// AL — allocation flexibility rank (1..=3).
    AllocationFlexibility,
    /// RL — runtime load: occupied node-seconds over available node-seconds.
    RuntimeLoad,
    /// CL — CPU load: CPU-seconds over available node-seconds.
    CpuLoad,
    /// E — distinct executables per job.
    NormExecutables,
    /// U — distinct users per job.
    NormUsers,
    /// C — fraction of jobs that completed successfully.
    CompletedFraction,
    /// Rm — median runtime.
    RuntimeMedian,
    /// Ri — 90% interval of runtime.
    RuntimeInterval,
    /// Pm — median degree of parallelism.
    ProcsMedian,
    /// Pi — 90% interval of parallelism.
    ProcsInterval,
    /// Nm — median normalized parallelism (out of a 128-node machine).
    NormProcsMedian,
    /// Ni — 90% interval of normalized parallelism.
    NormProcsInterval,
    /// Cm — median total CPU work.
    CpuWorkMedian,
    /// Ci — 90% interval of total CPU work.
    CpuWorkInterval,
    /// Im — median inter-arrival time.
    InterArrivalMedian,
    /// Ii — 90% interval of inter-arrival time.
    InterArrivalInterval,
}

impl Variable {
    /// All variables in Table 1 order.
    pub const ALL: [Variable; 18] = [
        Variable::MachineProcessors,
        Variable::SchedulerFlexibility,
        Variable::AllocationFlexibility,
        Variable::RuntimeLoad,
        Variable::CpuLoad,
        Variable::NormExecutables,
        Variable::NormUsers,
        Variable::CompletedFraction,
        Variable::RuntimeMedian,
        Variable::RuntimeInterval,
        Variable::ProcsMedian,
        Variable::ProcsInterval,
        Variable::NormProcsMedian,
        Variable::NormProcsInterval,
        Variable::CpuWorkMedian,
        Variable::CpuWorkInterval,
        Variable::InterArrivalMedian,
        Variable::InterArrivalInterval,
    ];

    /// The short code used in the paper's Table 1 ("MP", "Rm", ...).
    pub fn code(&self) -> &'static str {
        match self {
            Variable::MachineProcessors => "MP",
            Variable::SchedulerFlexibility => "SF",
            Variable::AllocationFlexibility => "AL",
            Variable::RuntimeLoad => "RL",
            Variable::CpuLoad => "CL",
            Variable::NormExecutables => "E",
            Variable::NormUsers => "U",
            Variable::CompletedFraction => "C",
            Variable::RuntimeMedian => "Rm",
            Variable::RuntimeInterval => "Ri",
            Variable::ProcsMedian => "Pm",
            Variable::ProcsInterval => "Pi",
            Variable::NormProcsMedian => "Nm",
            Variable::NormProcsInterval => "Ni",
            Variable::CpuWorkMedian => "Cm",
            Variable::CpuWorkInterval => "Ci",
            Variable::InterArrivalMedian => "Im",
            Variable::InterArrivalInterval => "Ii",
        }
    }

    /// Look up a variable by its Table 1 code.
    pub fn from_code(code: &str) -> Option<Variable> {
        Variable::ALL.iter().copied().find(|v| v.code() == code)
    }

    /// Human-readable name, as in Table 1's first column.
    pub fn name(&self) -> &'static str {
        match self {
            Variable::MachineProcessors => "Machine processors",
            Variable::SchedulerFlexibility => "Scheduler flexibility",
            Variable::AllocationFlexibility => "Allocation flexibility",
            Variable::RuntimeLoad => "Runtime load",
            Variable::CpuLoad => "CPU load",
            Variable::NormExecutables => "Norm. executables",
            Variable::NormUsers => "Norm. users",
            Variable::CompletedFraction => "% completed jobs",
            Variable::RuntimeMedian => "Runtime median",
            Variable::RuntimeInterval => "Runtime interval",
            Variable::ProcsMedian => "Processors median",
            Variable::ProcsInterval => "Processors interval",
            Variable::NormProcsMedian => "Norm. proc. median",
            Variable::NormProcsInterval => "Norm. proc. interval",
            Variable::CpuWorkMedian => "CPU work median",
            Variable::CpuWorkInterval => "CPU work interval",
            Variable::InterArrivalMedian => "Inter-arrival median",
            Variable::InterArrivalInterval => "Inter-arrival interval",
        }
    }
}

/// All Table 1 / Table 2 characteristics of one trace.
/// `None` fields are the paper's "N/A" cells.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Trace display name.
    pub name: String,
    pub machine_processors: f64,
    pub scheduler_flexibility: f64,
    pub allocation_flexibility: f64,
    pub runtime_load: Option<f64>,
    pub cpu_load: Option<f64>,
    pub norm_executables: Option<f64>,
    pub norm_users: Option<f64>,
    pub completed_fraction: Option<f64>,
    pub runtime_median: Option<f64>,
    pub runtime_interval: Option<f64>,
    pub procs_median: Option<f64>,
    pub procs_interval: Option<f64>,
    pub norm_procs_median: Option<f64>,
    pub norm_procs_interval: Option<f64>,
    pub cpu_work_median: Option<f64>,
    pub cpu_work_interval: Option<f64>,
    pub interarrival_median: Option<f64>,
    pub interarrival_interval: Option<f64>,
}

impl TraceStats {
    /// Compute every characteristic from a normalized trace.
    pub fn compute(w: &NormalizedTrace) -> TraceStats {
        let njobs = w.len();
        let duration = w.duration();
        let capacity = w.machine.processors as f64 * duration;

        // Loads. Runtime load sums node-seconds; CPU load sums CPU-seconds.
        let runtime_load = if capacity > 0.0 {
            let occupied: f64 = w.jobs().iter().filter_map(|j| j.node_seconds()).sum();
            let any = w.jobs().iter().any(|j| j.node_seconds().is_some());
            if any {
                Some(occupied / capacity)
            } else {
                None
            }
        } else {
            None
        };
        let cpu_load = if capacity > 0.0 {
            let mut any = false;
            let mut used = 0.0;
            for j in w.jobs() {
                if let (Some(cpu), Some(p)) = (j.avg_cpu_time_opt(), j.used_procs_opt()) {
                    used += cpu * p as f64;
                    any = true;
                }
            }
            if any {
                Some(used / capacity)
            } else {
                None
            }
        } else {
            None
        };

        // Population normalizations.
        let norm = |count: usize| {
            if njobs > 0 && count > 0 {
                Some(count as f64 / njobs as f64)
            } else {
                None
            }
        };
        let norm_executables = norm(w.distinct_executables());
        let norm_users = norm(w.distinct_users());

        // Completion fraction among jobs whose status is known.
        let known: Vec<&JobStatus> = w
            .jobs()
            .iter()
            .map(|j| &j.status)
            .filter(|s| **s != JobStatus::Unknown)
            .collect();
        let completed_fraction = if known.is_empty() {
            None
        } else {
            Some(
                known
                    .iter()
                    .filter(|s| ***s == JobStatus::Completed)
                    .count() as f64
                    / known.len() as f64,
            )
        };

        // Order statistics of the four per-job attributes.
        let runtimes: Vec<f64> = w.jobs().iter().filter_map(|j| j.run_time_opt()).collect();
        let procs: Vec<f64> = w
            .jobs()
            .iter()
            .filter_map(|j| j.used_procs_opt().map(|p| p as f64))
            .collect();
        let norm_procs: Vec<f64> = procs
            .iter()
            .map(|p| p / w.machine.processors as f64 * NORMALIZED_MACHINE)
            .collect();
        let work: Vec<f64> = w.jobs().iter().filter_map(|j| j.total_cpu_work()).collect();
        let interarrivals: Vec<f64> = w
            .jobs()
            .windows(2)
            .map(|pair| pair[1].submit_time - pair[0].submit_time)
            .collect();

        let med_int = |xs: &[f64]| -> (Option<f64>, Option<f64>) {
            if xs.is_empty() {
                (None, None)
            } else {
                let p = Percentiles::new(xs);
                (Some(p.median()), Some(p.interval(INTERVAL_WIDTH)))
            }
        };
        let (runtime_median, runtime_interval) = med_int(&runtimes);
        let (procs_median, procs_interval) = med_int(&procs);
        let (norm_procs_median, norm_procs_interval) = med_int(&norm_procs);
        let (cpu_work_median, cpu_work_interval) = med_int(&work);
        let (interarrival_median, interarrival_interval) = med_int(&interarrivals);

        TraceStats {
            name: w.name.clone(),
            machine_processors: w.machine.processors as f64,
            scheduler_flexibility: w.machine.scheduler.rank() as f64,
            allocation_flexibility: w.machine.allocation.rank() as f64,
            runtime_load,
            cpu_load,
            norm_executables,
            norm_users,
            completed_fraction,
            runtime_median,
            runtime_interval,
            procs_median,
            procs_interval,
            norm_procs_median,
            norm_procs_interval,
            cpu_work_median,
            cpu_work_interval,
            interarrival_median,
            interarrival_interval,
        }
    }

    /// Look a variable up by enum (None where the table shows N/A).
    pub fn get(&self, var: Variable) -> Option<f64> {
        match var {
            Variable::MachineProcessors => Some(self.machine_processors),
            Variable::SchedulerFlexibility => Some(self.scheduler_flexibility),
            Variable::AllocationFlexibility => Some(self.allocation_flexibility),
            Variable::RuntimeLoad => self.runtime_load,
            Variable::CpuLoad => self.cpu_load,
            Variable::NormExecutables => self.norm_executables,
            Variable::NormUsers => self.norm_users,
            Variable::CompletedFraction => self.completed_fraction,
            Variable::RuntimeMedian => self.runtime_median,
            Variable::RuntimeInterval => self.runtime_interval,
            Variable::ProcsMedian => self.procs_median,
            Variable::ProcsInterval => self.procs_interval,
            Variable::NormProcsMedian => self.norm_procs_median,
            Variable::NormProcsInterval => self.norm_procs_interval,
            Variable::CpuWorkMedian => self.cpu_work_median,
            Variable::CpuWorkInterval => self.cpu_work_interval,
            Variable::InterArrivalMedian => self.interarrival_median,
            Variable::InterArrivalInterval => self.interarrival_interval,
        }
    }

    /// The paper's imputation rule 1: when exactly one of CPU load and
    /// runtime load is missing, substitute the other (done for NASA and
    /// LLNL). Returns a copy with the rule applied.
    pub fn with_load_imputation(&self) -> TraceStats {
        let mut s = self.clone();
        match (s.runtime_load, s.cpu_load) {
            (None, Some(c)) => s.runtime_load = Some(c),
            (Some(r), None) => s.cpu_load = Some(r),
            _ => {}
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{JobRecord, JobStatus, QUEUE_BATCH};
    use crate::trace::{
        AllocationFlexibility, NormalizedTrace, SchedulerFlexibility, TraceMeta,
    };

    fn machine(procs: u64) -> TraceMeta {
        TraceMeta::new(
            procs,
            SchedulerFlexibility::Backfilling,
            AllocationFlexibility::Unlimited,
        )
    }

    fn job(id: u64, submit: f64, run: f64, procs: i64) -> JobRecord {
        let mut j = JobRecord::new(id, submit);
        j.wait_time = 0.0;
        j.run_time = run;
        j.used_procs = procs;
        j.status = JobStatus::Completed;
        j.user_id = (id % 3) as i64;
        j.executable_id = (id % 2) as i64;
        j.queue = QUEUE_BATCH;
        j
    }

    fn simple_trace() -> NormalizedTrace {
        // 4 jobs on a 10-processor machine; last job ends at t=100.
        NormalizedTrace::new(
            "T",
            machine(10),
            vec![
                job(1, 0.0, 50.0, 2),
                job(2, 10.0, 40.0, 4),
                job(3, 30.0, 70.0, 1),
                job(4, 60.0, 20.0, 8),
            ],
        )
    }

    #[test]
    fn runtime_load_definition() {
        let w = simple_trace();
        let s = TraceStats::compute(&w);
        // Node-seconds: 100 + 160 + 70 + 160 = 490; capacity 10 * 100.
        assert!((s.runtime_load.unwrap() - 0.49).abs() < 1e-12);
    }

    #[test]
    fn cpu_load_missing_when_no_cpu_times() {
        let s = TraceStats::compute(&simple_trace());
        assert_eq!(s.cpu_load, None);
    }

    #[test]
    fn cpu_load_uses_cpu_seconds() {
        let mut w = simple_trace();
        let mut jobs: Vec<JobRecord> = w.jobs().to_vec();
        for j in &mut jobs {
            j.avg_cpu_time = j.run_time / 2.0; // 50% efficiency
        }
        w = NormalizedTrace::new("T", machine(10), jobs);
        let s = TraceStats::compute(&w);
        assert!((s.cpu_load.unwrap() - 0.245).abs() < 1e-12);
        // CPU load is half the runtime load here.
        assert!((s.cpu_load.unwrap() - s.runtime_load.unwrap() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_counters() {
        let s = TraceStats::compute(&simple_trace());
        // Users {0,1,2} over 4 jobs; executables {0,1} over 4 jobs.
        assert!((s.norm_users.unwrap() - 0.75).abs() < 1e-12);
        assert!((s.norm_executables.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn completion_fraction_respects_unknowns() {
        let mut jobs = vec![
            job(1, 0.0, 1.0, 1),
            job(2, 1.0, 1.0, 1),
            job(3, 2.0, 1.0, 1),
        ];
        jobs[1].status = JobStatus::Failed;
        jobs[2].status = JobStatus::Unknown;
        let w = NormalizedTrace::new("T", machine(4), jobs);
        let s = TraceStats::compute(&w);
        // One completed out of two known.
        assert!((s.completed_fraction.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn medians_and_intervals() {
        let s = TraceStats::compute(&simple_trace());
        // Runtimes sorted: 20 40 50 70 -> median 45.
        assert!((s.runtime_median.unwrap() - 45.0).abs() < 1e-12);
        // Procs sorted: 1 2 4 8 -> median 3.
        assert!((s.procs_median.unwrap() - 3.0).abs() < 1e-12);
        // Normalized procs on 10-node machine -> x * 12.8; median 38.4.
        assert!((s.norm_procs_median.unwrap() - 38.4).abs() < 1e-9);
        // Inter-arrivals: 10, 20, 30 -> median 20.
        assert!((s.interarrival_median.unwrap() - 20.0).abs() < 1e-12);
        assert!(s.runtime_interval.unwrap() > 0.0);
    }

    #[test]
    fn cpu_work_falls_back_to_runtime_times_procs() {
        let s = TraceStats::compute(&simple_trace());
        // Work values: 100, 160, 70, 160 -> median 130.
        assert!((s.cpu_work_median.unwrap() - 130.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_all_missing() {
        let w = NormalizedTrace::new("E", machine(4), vec![]);
        let s = TraceStats::compute(&w);
        assert_eq!(s.runtime_load, None);
        assert_eq!(s.runtime_median, None);
        assert_eq!(s.interarrival_median, None);
        assert_eq!(s.completed_fraction, None);
        // Machine facts still present.
        assert_eq!(s.machine_processors, 4.0);
    }

    #[test]
    fn single_job_has_no_interarrival() {
        let w = NormalizedTrace::new("S", machine(4), vec![job(1, 0.0, 5.0, 1)]);
        let s = TraceStats::compute(&w);
        assert_eq!(s.interarrival_median, None);
        assert!(s.runtime_median.is_some());
    }

    #[test]
    fn load_imputation_rule() {
        let mut s = TraceStats::compute(&simple_trace());
        s.cpu_load = None;
        s.runtime_load = Some(0.6);
        let imp = s.with_load_imputation();
        assert_eq!(imp.cpu_load, Some(0.6));
        // And the reverse direction.
        s.cpu_load = Some(0.4);
        s.runtime_load = None;
        assert_eq!(s.with_load_imputation().runtime_load, Some(0.4));
    }

    #[test]
    fn get_matches_fields() {
        let s = TraceStats::compute(&simple_trace());
        assert_eq!(s.get(Variable::RuntimeLoad), s.runtime_load);
        assert_eq!(s.get(Variable::MachineProcessors), Some(10.0));
        assert_eq!(s.get(Variable::SchedulerFlexibility), Some(2.0));
        for v in Variable::ALL {
            let _ = s.get(v); // no panics for any variable
        }
    }

    #[test]
    fn variable_codes_unique() {
        let mut codes: Vec<&str> = Variable::ALL.iter().map(|v| v.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Variable::ALL.len());
    }
}
