//! SWF (Standard Workload Format) reader and writer — the first adapter.
//!
//! An SWF file is line-oriented: header lines start with `;` and carry
//! `; Key: value` metadata; every other non-empty line is one job with 18
//! whitespace-separated numeric fields, `-1` marking unknown values.

use std::collections::BTreeMap;

use crate::record::{JobRecord, JobStatus};
use crate::report::{meta_from_header, parse_lines, ParseError, ParseErrorKind, ParseReport};
use crate::trace::{NormalizedTrace, TraceMeta};
use crate::{TraceFormat, TraceSource};

/// Parsed SWF document: header metadata plus jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfDocument {
    /// Header key/value pairs from `; Key: value` comment lines.
    pub header: BTreeMap<String, String>,
    /// Jobs in file order.
    pub jobs: Vec<JobRecord>,
}

impl SwfDocument {
    /// Turn the document into a [`NormalizedTrace`], reading what machine
    /// metadata it can from the header (`MaxNodes`, plus this workspace's
    /// `SchedulerRank` / `AllocationRank` extension keys) and falling back
    /// to the supplied defaults.
    pub fn into_trace(self, name: impl Into<String>, default: TraceMeta) -> NormalizedTrace {
        let machine = meta_from_header(&self.header, default);
        NormalizedTrace::new(name, machine, self.jobs)
    }

    /// Compatibility name for [`SwfDocument::into_trace`], kept so the
    /// pre-`TraceSource` call sites (which knew this type as producing a
    /// `Workload`) keep compiling unchanged.
    pub fn into_workload(self, name: impl Into<String>, default: TraceMeta) -> NormalizedTrace {
        self.into_trace(name, default)
    }
}

/// Parse SWF text into a document, erroring on the first malformed job line.
pub fn parse_swf(text: &str) -> Result<SwfDocument, ParseError> {
    let _span = wl_obs::span!("swf.parse");
    let (header, jobs, report, first_err) =
        parse_lines(TraceFormat::Swf, ';', true, text, parse_job_line);
    report.record_metrics();
    match first_err {
        Some(e) => Err(e),
        None => Ok(SwfDocument { header, jobs }),
    }
}

/// Parse SWF text, skipping malformed job lines instead of failing.
///
/// Every dropped line is recorded in the [`ParseReport`] with its typed
/// [`ParseErrorKind`], and the matching `swf.skip.*` counter is incremented
/// when observability is armed. Never panics on any input.
pub fn parse_swf_lenient(text: &str) -> (SwfDocument, ParseReport) {
    let _span = wl_obs::span!("swf.parse");
    let (header, jobs, report, _) =
        parse_lines(TraceFormat::Swf, ';', false, text, parse_job_line);
    report.record_metrics();
    (SwfDocument { header, jobs }, report)
}

fn parse_job_line(line: &str, lineno: usize) -> Result<JobRecord, ParseError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != 18 {
        return Err(ParseError {
            line: lineno,
            kind: ParseErrorKind::FieldCount,
            message: format!("expected 18 fields, found {}", fields.len()),
        });
    }
    let f = |i: usize| numeric_field(&fields, i, lineno);
    let int = |i: usize| integer_field(&fields, i, lineno);
    let id = int(0)?;
    if id < 0 {
        return Err(ParseError {
            line: lineno,
            kind: ParseErrorKind::NegativeId,
            message: format!("job id must be non-negative, found {id}"),
        });
    }
    Ok(JobRecord {
        id: id as u64,
        submit_time: f(1)?,
        wait_time: f(2)?,
        run_time: f(3)?,
        used_procs: int(4)?,
        avg_cpu_time: f(5)?,
        used_memory: f(6)?,
        requested_procs: int(7)?,
        requested_time: f(8)?,
        requested_memory: f(9)?,
        status: JobStatus::from_code(int(10)?),
        user_id: int(11)?,
        group_id: int(12)?,
        executable_id: int(13)?,
        queue: int(14)?,
        partition: int(15)?,
        preceding_job: int(16)?,
        think_time: f(17)?,
    })
}

/// Parse one whitespace-split field as a finite f64 (shared with the GWF
/// adapter, whose first 16 data fields mirror SWF's).
pub(crate) fn numeric_field(fields: &[&str], i: usize, lineno: usize) -> Result<f64, ParseError> {
    let v = fields[i].parse::<f64>().map_err(|_| ParseError {
        line: lineno,
        kind: ParseErrorKind::NotNumeric,
        message: format!("field {} is not numeric: {:?}", i + 1, fields[i]),
    })?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(ParseError {
            line: lineno,
            kind: ParseErrorKind::NonFinite,
            message: format!("field {} is not finite: {:?}", i + 1, fields[i]),
        })
    }
}

/// Parse one field as an integer, accepting "4" and "4.0" alike; trace files
/// in the wild mix both.
pub(crate) fn integer_field(fields: &[&str], i: usize, lineno: usize) -> Result<i64, ParseError> {
    let v = numeric_field(fields, i, lineno)?;
    Ok(v as i64)
}

/// Serialize a trace back to SWF text, including a header describing the
/// machine so a later [`parse_swf`] + [`SwfDocument::into_trace`] round
/// trip preserves it.
pub fn write_swf(workload: &NormalizedTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("; Computer: {}\n", workload.name));
    out.push_str(&format!("; MaxNodes: {}\n", workload.machine.processors));
    out.push_str(&format!(
        "; SchedulerRank: {}\n",
        workload.machine.scheduler.rank()
    ));
    out.push_str(&format!(
        "; AllocationRank: {}\n",
        workload.machine.allocation.rank()
    ));
    out.push_str(&format!("; MaxJobs: {}\n", workload.len()));
    for j in workload.jobs() {
        out.push_str(&format_job_line(j));
        out.push('\n');
    }
    out
}

pub(crate) fn fmt_f(v: f64) -> String {
    // Keep integers compact; SWF consumers expect "-1" not "-1.0".
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn format_job_line(j: &JobRecord) -> String {
    [
        j.id.to_string(),
        fmt_f(j.submit_time),
        fmt_f(j.wait_time),
        fmt_f(j.run_time),
        j.used_procs.to_string(),
        fmt_f(j.avg_cpu_time),
        fmt_f(j.used_memory),
        j.requested_procs.to_string(),
        fmt_f(j.requested_time),
        fmt_f(j.requested_memory),
        j.status.code().to_string(),
        j.user_id.to_string(),
        j.group_id.to_string(),
        j.executable_id.to_string(),
        j.queue.to_string(),
        j.partition.to_string(),
        j.preceding_job.to_string(),
        fmt_f(j.think_time),
    ]
    .join(" ")
}

/// The SWF adapter.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwfSource;

impl TraceSource for SwfSource {
    fn format(&self) -> TraceFormat {
        TraceFormat::Swf
    }

    fn read(
        &self,
        name: &str,
        text: &str,
        default: TraceMeta,
    ) -> Result<NormalizedTrace, ParseError> {
        parse_swf(text).map(|doc| doc.into_trace(name, default))
    }

    fn read_lenient(
        &self,
        name: &str,
        text: &str,
        default: TraceMeta,
    ) -> (NormalizedTrace, ParseReport) {
        let (doc, report) = parse_swf_lenient(text);
        (doc.into_trace(name, default), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AllocationFlexibility, SchedulerFlexibility};

    fn machine() -> TraceMeta {
        TraceMeta::new(
            64,
            SchedulerFlexibility::BatchQueue,
            AllocationFlexibility::Limited,
        )
    }

    #[test]
    fn parses_minimal_file() {
        let text = "\
; Computer: Test
; MaxNodes: 64
1 0 5 100 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1
2 60 -1 50 2 -1 -1 -1 -1 -1 0 4 1 8 2 -1 -1 -1
";
        let doc = parse_swf(text).unwrap();
        assert_eq!(doc.header["Computer"], "Test");
        assert_eq!(doc.jobs.len(), 2);
        assert_eq!(doc.jobs[0].id, 1);
        assert_eq!(doc.jobs[0].run_time, 100.0);
        assert_eq!(doc.jobs[0].used_procs, 4);
        assert_eq!(doc.jobs[0].status, JobStatus::Completed);
        assert_eq!(doc.jobs[1].status, JobStatus::Failed);
        assert_eq!(doc.jobs[1].run_time_opt(), Some(50.0));
        assert_eq!(doc.jobs[1].avg_cpu_time_opt(), None);
    }

    #[test]
    fn wrong_field_count_is_error() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.kind, ParseErrorKind::FieldCount);
        assert!(err.message.contains("18 fields"));
        // The conversion into the pipeline's error type keeps location and
        // kind.
        let converted: coplot::CoplotError = err.into();
        assert!(matches!(
            converted,
            coplot::CoplotError::Parse {
                line: 1,
                kind: coplot::ParseKind::FieldCount,
                ..
            }
        ));
    }

    #[test]
    fn non_numeric_field_is_error() {
        let text = "1 0 5 abc 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1\n";
        let err = parse_swf(text).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::NotNumeric);
        assert!(err.message.contains("not numeric"));
    }

    #[test]
    fn negative_id_is_error() {
        let text = "-1 0 5 1 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1\n";
        let err = parse_swf(text).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::NegativeId);
    }

    #[test]
    fn non_finite_field_is_error() {
        for bad in ["inf", "-inf", "NaN", "1e999"] {
            let text = format!("1 0 5 {bad} 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1\n");
            let err = parse_swf(&text).unwrap_err();
            assert_eq!(err.kind, ParseErrorKind::NonFinite, "{bad}");
        }
    }

    /// A fixture mixing every malformation between good jobs: the strict
    /// parse reports the first bad line, the lenient parse keeps all good
    /// jobs and types every drop.
    const MIXED_FIXTURE: &str = "\
; Computer: Mixed
; MaxNodes: 64
1 0 5 100 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1
2 0 5
-3 0 5 1 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1
4 0 5 abc 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1
5 0 5 inf 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1
6 60 1 50 2 -1 -1 -1 -1 -1 0 4 1 8 2 -1 -1 -1
";

    #[test]
    fn lenient_parse_skips_and_types_every_malformation() {
        let (doc, report) = parse_swf_lenient(MIXED_FIXTURE);
        assert_eq!(doc.jobs.len(), 2);
        assert_eq!(doc.jobs[0].id, 1);
        assert_eq!(doc.jobs[1].id, 6);
        assert_eq!(doc.header["Computer"], "Mixed");
        assert_eq!(report.format, TraceFormat::Swf);
        assert_eq!(report.jobs, 2);
        assert_eq!(report.header_lines, 2);
        assert_eq!(
            report.skipped,
            vec![
                (4, ParseErrorKind::FieldCount),
                (5, ParseErrorKind::NegativeId),
                (6, ParseErrorKind::NotNumeric),
                (7, ParseErrorKind::NonFinite),
            ]
        );
        assert_eq!(report.skipped_of(ParseErrorKind::FieldCount), 1);
    }

    #[test]
    fn strict_parse_stops_at_first_bad_line_of_fixture() {
        let err = parse_swf(MIXED_FIXTURE).unwrap_err();
        assert_eq!(err.line, 4);
        assert_eq!(err.kind, ParseErrorKind::FieldCount);
    }

    #[test]
    fn lenient_parse_increments_skip_counters() {
        wl_obs::set_enabled(true);
        let snap = wl_obs::registry().snapshot();
        let before: Vec<u64> = [
            "swf.skip.field_count",
            "swf.skip.negative_id",
            "swf.skip.not_numeric",
            "swf.skip.non_finite",
            "swf.jobs_parsed",
        ]
        .iter()
        .map(|n| snap.counter(n))
        .collect();
        parse_swf_lenient(MIXED_FIXTURE);
        let snap = wl_obs::registry().snapshot();
        assert!(snap.counter("swf.skip.field_count") > before[0]);
        assert!(snap.counter("swf.skip.negative_id") > before[1]);
        assert!(snap.counter("swf.skip.not_numeric") > before[2]);
        assert!(snap.counter("swf.skip.non_finite") > before[3]);
        assert!(snap.counter("swf.jobs_parsed") >= before[4] + 2);
    }

    #[test]
    fn truncated_file_mid_line_never_panics() {
        // Cut a valid document at every byte boundary; both parsers must
        // return (not panic) on each prefix.
        let text = "; MaxNodes: 8\n1 0 5 100 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1\n";
        for cut in 0..=text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let prefix = &text[..cut];
            let _ = parse_swf(prefix);
            let (_, report) = parse_swf_lenient(prefix);
            assert!(report.jobs <= 1);
        }
    }

    #[test]
    fn round_trip_preserves_trace() {
        let mut j1 = JobRecord::new(1, 0.0);
        j1.run_time = 123.5;
        j1.used_procs = 8;
        j1.user_id = 3;
        j1.status = JobStatus::Completed;
        let mut j2 = JobRecord::new(2, 17.25);
        j2.run_time = 4.0;
        j2.used_procs = 1;
        j2.queue = 1;
        let w = NormalizedTrace::new("RT", machine(), vec![j1, j2]);

        let text = write_swf(&w);
        let doc = parse_swf(&text).unwrap();
        let w2 = doc.into_trace("RT", machine());
        assert_eq!(w, w2);
    }

    #[test]
    fn header_machine_metadata_round_trips() {
        let w = NormalizedTrace::new(
            "M",
            TraceMeta::new(
                1024,
                SchedulerFlexibility::Gang,
                AllocationFlexibility::PowerOfTwoPartitions,
            ),
            vec![],
        );
        let text = write_swf(&w);
        let doc = parse_swf(&text).unwrap();
        // Defaults differ from the header; header must win.
        let w2 = doc.into_trace("M", machine());
        assert_eq!(w2.machine.processors, 1024);
        assert_eq!(w2.machine.scheduler, SchedulerFlexibility::Gang);
        assert_eq!(
            w2.machine.allocation,
            AllocationFlexibility::PowerOfTwoPartitions
        );
    }

    #[test]
    fn blank_lines_and_plain_comments_ignored() {
        let text = "\n; just a note without colon-value\n\n";
        let doc = parse_swf(text).unwrap();
        assert!(doc.jobs.is_empty());
        assert!(doc.header.is_empty());
    }

    #[test]
    fn fractional_and_integer_fields_both_accepted() {
        let text = "1 0.5 5.0 100.25 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1\n";
        let doc = parse_swf(text).unwrap();
        assert_eq!(doc.jobs[0].submit_time, 0.5);
        assert_eq!(doc.jobs[0].run_time, 100.25);
    }

    #[test]
    fn source_read_matches_manual_parse() {
        let text = "\
; MaxNodes: 32
1 0 5 100 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1
";
        let via_source = SwfSource.read("t", text, machine()).unwrap();
        let manual = parse_swf(text).unwrap().into_trace("t", machine());
        assert_eq!(via_source, manual);
        assert_eq!(
            via_source.canonical_digest(),
            manual.canonical_digest()
        );
        assert_eq!(SwfSource.format(), TraceFormat::Swf);
    }

    mod fuzz {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Neither parser panics on arbitrary text, and the lenient one
            /// accounts for every line (parsed + skipped + header + ignored
            /// = lines).
            #[test]
            fn parsers_never_panic_on_arbitrary_text(text in "\\PC*") {
                let _ = parse_swf(&text);
                let (doc, report) = parse_swf_lenient(&text);
                prop_assert_eq!(doc.jobs.len(), report.jobs);
                prop_assert_eq!(
                    report.jobs + report.skipped.len() + report.header_lines
                        + report.ignored_lines,
                    report.lines
                );
            }

            /// Corrupting one field of a valid job line yields a typed error
            /// (or a valid parse if the mutation happens to stay numeric) —
            /// never a panic.
            #[test]
            fn corrupted_field_gives_typed_error(
                field in 0usize..18,
                garbage in "\\PC*",
            ) {
                let mut fields: Vec<String> =
                    "1 0 5 100 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1"
                        .split_whitespace()
                        .map(str::to_string)
                        .collect();
                fields[field] = garbage;
                let line = fields.join(" ");
                // The garbage may itself contain newlines, splitting the
                // document into several lines — any typed error (or a clean
                // parse of whatever survives) is acceptable; a panic is not.
                match parse_swf(&line) {
                    Ok(doc) => prop_assert!(doc.jobs.len() <= 2),
                    Err(e) => {
                        prop_assert!(e.line >= 1);
                        // Kind is one of the typed reasons; the label is
                        // total so this cannot panic.
                        let _ = e.kind.label();
                    }
                }
            }

            /// Lenient parsing of a document with malformed lines injected
            /// between valid ones keeps exactly the valid jobs.
            #[test]
            fn lenient_keeps_exactly_the_valid_jobs(
                n_good in 0usize..6,
                n_bad in 0usize..6,
            ) {
                let mut text = String::new();
                for i in 0..n_good.max(n_bad) {
                    if i < n_good {
                        text.push_str(&format!(
                            "{} 0 5 100 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1\n",
                            i + 1
                        ));
                    }
                    if i < n_bad {
                        text.push_str("truncated line\n");
                    }
                }
                let (doc, report) = parse_swf_lenient(&text);
                prop_assert_eq!(doc.jobs.len(), n_good);
                prop_assert_eq!(report.skipped.len(), n_bad);
                prop_assert!(report
                    .skipped
                    .iter()
                    .all(|(_, k)| *k == ParseErrorKind::FieldCount));
            }
        }
    }
}
