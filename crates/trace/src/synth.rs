//! Deterministic synthetic trace families for the non-SWF formats.
//!
//! The registry's reproduction suites synthesize SWF workloads from the
//! paper's models (`wl-logsynth` / `wl-repro`); this module plays the same
//! role for the new formats so everything stays testable offline: five grid
//! sites emitted as GWF text and four web servers emitted as Common Log
//! Format text. Generators write *text* and the suites parse it back
//! through the real adapters, so every synthetic dataset exercises the full
//! ingestion path end-to-end.
//!
//! Determinism contract (same as the model generators): one `StdRng` seeded
//! via `derive_seed(seed, stream)` per site/server, every sample drawn in a
//! fixed order, timestamps anchored at a fixed 1999-01-01 UTC epoch — so
//! equal seeds give byte-identical text on every thread count and platform.

use rand::prelude::*;
use wl_stats::rng::{derive_seed, seeded_rng};

use crate::gwf::write_gwf;
use crate::record::{JobRecord, JobStatus, QUEUE_BATCH};
use crate::trace::{
    AllocationFlexibility, NormalizedTrace, SchedulerFlexibility, TraceMeta,
};
use crate::weblog::fmt_clf_time;
use crate::TraceFormat;

/// Seconds since the Unix epoch for 1999-01-01 00:00:00 UTC — the fixed
/// origin of every synthetic web log (the paper's year).
pub const BASE_EPOCH: f64 = 915_148_800.0;

/// Seed-stream offset for the grid family (`derive_seed(seed, 2000 + k)`);
/// the reproduction model suites use 1000+k, the web family 3000+k, so the
/// families never share a stream.
const GRID_STREAM: u64 = 2000;
const WEB_STREAM: u64 = 3000;

struct GridSite {
    name: &'static str,
    processors: u64,
    scheduler: SchedulerFlexibility,
    allocation: AllocationFlexibility,
    /// Mean inter-arrival time, seconds.
    mean_arrival: f64,
    /// Lognormal runtime parameters (of ln seconds).
    run_mu: f64,
    run_sigma: f64,
    /// Probability a job is serial; parallel jobs draw a power of two.
    serial_p: f64,
    max_pow: u32,
    users: u64,
    executables: u64,
}

/// Five synthetic grid sites, loosely shaped after the Grid Workloads
/// Archive population: mostly-serial bags of tasks on small sites, wider
/// parallel jobs on the large ones.
const GRID_SITES: [GridSite; 5] = [
    GridSite {
        name: "DAS2",
        processors: 144,
        scheduler: SchedulerFlexibility::BatchQueue,
        allocation: AllocationFlexibility::Unlimited,
        mean_arrival: 90.0,
        run_mu: 4.5,
        run_sigma: 1.6,
        serial_p: 0.55,
        max_pow: 6,
        users: 32,
        executables: 12,
    },
    GridSite {
        name: "Grid5K",
        processors: 512,
        scheduler: SchedulerFlexibility::Backfilling,
        allocation: AllocationFlexibility::Unlimited,
        mean_arrival: 60.0,
        run_mu: 5.0,
        run_sigma: 1.8,
        serial_p: 0.40,
        max_pow: 8,
        users: 64,
        executables: 20,
    },
    GridSite {
        name: "NorduGrid",
        processors: 96,
        scheduler: SchedulerFlexibility::BatchQueue,
        allocation: AllocationFlexibility::Limited,
        mean_arrival: 120.0,
        run_mu: 6.0,
        run_sigma: 1.5,
        serial_p: 0.70,
        max_pow: 4,
        users: 24,
        executables: 10,
    },
    GridSite {
        name: "AuverGrid",
        processors: 475,
        scheduler: SchedulerFlexibility::BatchQueue,
        allocation: AllocationFlexibility::Unlimited,
        mean_arrival: 150.0,
        run_mu: 5.5,
        run_sigma: 1.7,
        serial_p: 0.80,
        max_pow: 5,
        users: 16,
        executables: 8,
    },
    GridSite {
        name: "SHARCNET",
        processors: 3072,
        scheduler: SchedulerFlexibility::Backfilling,
        allocation: AllocationFlexibility::Unlimited,
        mean_arrival: 45.0,
        run_mu: 4.8,
        run_sigma: 2.0,
        serial_p: 0.50,
        max_pow: 7,
        users: 96,
        executables: 30,
    },
];

struct WebServer {
    name: &'static str,
    hosts: u64,
    sections: u64,
    /// Mean inter-arrival time between session starts, seconds.
    mean_arrival: f64,
    /// Probability a session issues another request after each one.
    continue_p: f64,
    /// Lognormal response-size parameters (of ln bytes).
    bytes_mu: f64,
    bytes_sigma: f64,
}

/// Four synthetic web servers with different client populations and
/// session depths.
const WEB_SERVERS: [WebServer; 4] = [
    WebServer {
        name: "wwwA",
        hosts: 40,
        sections: 6,
        mean_arrival: 20.0,
        continue_p: 0.60,
        bytes_mu: 8.5,
        bytes_sigma: 1.2,
    },
    WebServer {
        name: "wwwB",
        hosts: 120,
        sections: 10,
        mean_arrival: 8.0,
        continue_p: 0.70,
        bytes_mu: 9.0,
        bytes_sigma: 1.0,
    },
    WebServer {
        name: "wwwC",
        hosts: 25,
        sections: 4,
        mean_arrival: 45.0,
        continue_p: 0.50,
        bytes_mu: 8.0,
        bytes_sigma: 1.5,
    },
    WebServer {
        name: "wwwD",
        hosts: 60,
        sections: 8,
        mean_arrival: 15.0,
        continue_p: 0.65,
        bytes_mu: 8.8,
        bytes_sigma: 1.1,
    },
];

/// Number of synthetic grid sites.
pub const GRID_SITE_COUNT: usize = GRID_SITES.len();
/// Number of synthetic web servers.
pub const WEB_SERVER_COUNT: usize = WEB_SERVERS.len();

/// Name of grid site `site` (panics when out of range).
pub fn grid_site_name(site: usize) -> &'static str {
    GRID_SITES[site].name
}

/// Name of web server `server` (panics when out of range).
pub fn web_server_name(server: usize) -> &'static str {
    WEB_SERVERS[server].name
}

fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

// Lognormal via Box-Muller; the vendored rand subset has no distributions
// module.
fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mu + sigma * z).exp()
}

/// Synthesize grid site `site` as GWF text with `jobs` jobs.
/// Fully determined by `(site, jobs, seed)`.
pub fn grid_site_text(site: usize, jobs: usize, seed: u64) -> String {
    let s = &GRID_SITES[site];
    let mut rng = seeded_rng(derive_seed(seed, GRID_STREAM + site as u64));
    let mut submit = 0.0;
    let records: Vec<JobRecord> = (0..jobs)
        .map(|i| {
            submit += exp_sample(&mut rng, s.mean_arrival);
            let mut j = JobRecord::new(i as u64 + 1, submit.floor());
            j.wait_time = exp_sample(&mut rng, 30.0).floor();
            j.run_time = lognormal(&mut rng, s.run_mu, s.run_sigma).ceil().min(1e7);
            let procs = if rng.gen_bool(s.serial_p) {
                1u64
            } else {
                1u64 << rng.gen_range(1..=s.max_pow)
            };
            j.used_procs = procs.min(s.processors) as i64;
            j.avg_cpu_time = (j.run_time * rng.gen_range(0.5f64..1.0)).floor();
            j.requested_procs = j.used_procs;
            j.requested_time = (j.run_time * rng.gen_range(1.0f64..3.0)).ceil();
            j.status = if rng.gen_bool(0.92) {
                JobStatus::Completed
            } else {
                JobStatus::Failed
            };
            j.user_id = rng.gen_range(0..s.users) as i64;
            j.group_id = j.user_id % 8;
            j.executable_id = rng.gen_range(0..s.executables) as i64;
            j.queue = QUEUE_BATCH;
            j
        })
        .collect();
    let trace = NormalizedTrace::new(
        s.name,
        TraceMeta::new(s.processors, s.scheduler, s.allocation),
        records,
    );
    write_gwf(&trace)
}

/// Synthesize web server `server` as Common Log Format text with `sessions`
/// client sessions. Fully determined by `(server, sessions, seed)`.
pub fn web_server_text(server: usize, sessions: usize, seed: u64) -> String {
    let s = &WEB_SERVERS[server];
    let mut rng = seeded_rng(derive_seed(seed, WEB_STREAM + server as u64));
    // (time, generation index, line) so the emitted log is time-ordered
    // with deterministic tie-breaks, like a real server's.
    let mut lines: Vec<(i64, usize, String)> = Vec::new();
    let mut start = BASE_EPOCH;
    for _ in 0..sessions {
        start += exp_sample(&mut rng, s.mean_arrival);
        let host = format!("host{:03}.{}.example.com", rng.gen_range(0..s.hosts), s.name);
        let mut t = start.floor() as i64;
        let mut depth = 0usize;
        loop {
            let section = rng.gen_range(0..s.sections);
            let page = rng.gen_range(0..30u32);
            let status = if rng.gen_bool(0.95) {
                200
            } else if rng.gen_bool(0.5) {
                404
            } else {
                500
            };
            let bytes = if rng.gen_bool(0.05) {
                "-".to_string()
            } else {
                format!("{}", lognormal(&mut rng, s.bytes_mu, s.bytes_sigma) as u64)
            };
            lines.push((
                t,
                lines.len(),
                format!(
                    "{host} - - {} \"GET /sec{section}/page{page}.html HTTP/1.0\" {status} {bytes}",
                    fmt_clf_time(t as f64)
                ),
            ));
            depth += 1;
            if !rng.gen_bool(s.continue_p) || depth >= 50 {
                break;
            }
            // Intra-session think time stays under the 30s session cutoff.
            t += rng.gen_range(1i64..15);
        }
    }
    lines.sort_by_key(|l| (l.0, l.1));
    let mut out = format!("# Server: {}\n", s.name);
    for (_, _, line) in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

fn default_web_meta() -> TraceMeta {
    TraceMeta::new(
        1,
        SchedulerFlexibility::BatchQueue,
        AllocationFlexibility::Unlimited,
    )
}

/// Synthesize all grid sites with `jobs` jobs each and ingest them through
/// the real GWF adapter, in parallel. Deterministic across thread counts.
pub fn grid_suite(jobs: usize, seed: u64, threads: usize) -> Vec<NormalizedTrace> {
    let sites: Vec<usize> = (0..GRID_SITE_COUNT).collect();
    wl_par::par_map(threads, &sites, |&site| {
        let text = grid_site_text(site, jobs, seed);
        TraceFormat::Gwf
            .source()
            .read(grid_site_name(site), &text, default_web_meta())
            .expect("synthetic GWF text must parse")
    })
}

/// Synthesize all web servers with `sessions` sessions each and ingest them
/// through the real access-log adapter, in parallel. Deterministic across
/// thread counts.
pub fn web_suite(sessions: usize, seed: u64, threads: usize) -> Vec<NormalizedTrace> {
    let servers: Vec<usize> = (0..WEB_SERVER_COUNT).collect();
    wl_par::par_map(threads, &servers, |&server| {
        let text = web_server_text(server, sessions, seed);
        TraceFormat::Weblog
            .source()
            .read(web_server_name(server), &text, default_web_meta())
            .expect("synthetic CLF text must parse")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gwf::parse_gwf;
    use crate::weblog::parse_weblog;

    #[test]
    fn grid_text_is_deterministic_and_strictly_parseable() {
        let a = grid_site_text(0, 50, 1999);
        let b = grid_site_text(0, 50, 1999);
        assert_eq!(a, b);
        let doc = parse_gwf(&a).expect("synthetic GWF parses strictly");
        assert_eq!(doc.jobs.len(), 50);
        // Different seed, different text.
        assert_ne!(a, grid_site_text(0, 50, 7));
        // Different site, different text.
        assert_ne!(a, grid_site_text(1, 50, 1999));
    }

    #[test]
    fn web_text_is_deterministic_and_strictly_parseable() {
        let a = web_server_text(0, 40, 1999);
        let b = web_server_text(0, 40, 1999);
        assert_eq!(a, b);
        let doc = parse_weblog(&a).expect("synthetic CLF parses strictly");
        assert!(doc.requests.len() >= 40); // at least one request per session
        assert_ne!(a, web_server_text(0, 40, 7));
        assert_ne!(a, web_server_text(1, 40, 1999));
    }

    #[test]
    fn web_log_is_time_ordered() {
        let text = web_server_text(1, 30, 3);
        let doc = parse_weblog(&text).unwrap();
        assert!(doc
            .requests
            .windows(2)
            .all(|p| p[0].time <= p[1].time));
    }

    #[test]
    fn suites_are_bit_identical_across_thread_counts() {
        let g1 = grid_suite(60, 1999, 1);
        let g8 = grid_suite(60, 1999, 8);
        assert_eq!(g1, g8);
        let w1 = web_suite(40, 1999, 1);
        let w8 = web_suite(40, 1999, 8);
        assert_eq!(w1, w8);
        for (a, b) in g1.iter().zip(&g8) {
            assert_eq!(a.canonical_digest(), b.canonical_digest());
        }
    }

    #[test]
    fn suites_have_advertised_shapes() {
        let grids = grid_suite(25, 7, 2);
        assert_eq!(grids.len(), GRID_SITE_COUNT);
        for (k, g) in grids.iter().enumerate() {
            assert_eq!(g.name, grid_site_name(k));
            assert_eq!(g.len(), 25);
            assert_eq!(g.machine.processors, GRID_SITES[k].processors);
        }
        let webs = web_suite(30, 7, 2);
        assert_eq!(webs.len(), WEB_SERVER_COUNT);
        for (k, w) in webs.iter().enumerate() {
            assert_eq!(w.name, web_server_name(k));
            // Sessions may merge when the same host draws overlapping
            // windows, so the job count is bounded by the session count.
            assert!(!w.is_empty() && w.len() <= 30);
            // Peak concurrency became the machine size.
            assert!(w.machine.processors >= 1);
        }
    }

    #[test]
    fn grid_sites_have_distinct_digests() {
        let grids = grid_suite(20, 11, 1);
        let mut digests: Vec<u64> = grids.iter().map(|g| g.canonical_digest()).collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), GRID_SITE_COUNT);
    }
}
