//! Trait-level parse machinery shared by every trace adapter.
//!
//! The SWF parser's typed per-line error taxonomy, lenient-parse accounting,
//! and metrics mirroring generalize here: every adapter reports the same
//! [`ParseErrorKind`]s, fills the same [`ParseReport`], and increments the
//! same per-format `<format>.lines` / `<format>.jobs_parsed` /
//! `<format>.skip.<kind>` counters, so `/metrics` distinguishes ingestion
//! formats with one taxonomy.

use std::collections::BTreeMap;
use std::fmt;

use crate::trace::{AllocationFlexibility, SchedulerFlexibility, TraceMeta};
use crate::TraceFormat;

/// Typed reason a data line was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ParseErrorKind {
    /// Wrong number of fields (truncated or padded line).
    FieldCount,
    /// A field was not numeric.
    NotNumeric,
    /// The job id was negative.
    NegativeId,
    /// A field parsed to NaN or an infinity.
    NonFinite,
    /// A timestamp field could not be decoded (web access logs).
    BadTimestamp,
    /// A request line could not be decoded (web access logs).
    BadRequest,
}

impl ParseErrorKind {
    /// Short kebab-case label, stable for metrics and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            ParseErrorKind::FieldCount => "field-count",
            ParseErrorKind::NotNumeric => "not-numeric",
            ParseErrorKind::NegativeId => "negative-id",
            ParseErrorKind::NonFinite => "non-finite",
            ParseErrorKind::BadTimestamp => "bad-timestamp",
            ParseErrorKind::BadRequest => "bad-request",
        }
    }
}

/// Error from parsing a trace document, independent of format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Typed malformation kind.
    pub kind: ParseErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {} ({}): {}",
            self.line,
            self.kind.label(),
            self.message
        )
    }
}

impl std::error::Error for ParseError {}

// The conversion lives here (not in `coplot`) because of the orphan rule:
// `coplot` cannot name `ParseError` without a dependency cycle, so its
// `CoplotError::Parse` variant mirrors the fields instead.
impl From<ParseError> for coplot::CoplotError {
    fn from(e: ParseError) -> coplot::CoplotError {
        coplot::CoplotError::Parse {
            line: e.line,
            kind: match e.kind {
                ParseErrorKind::FieldCount => coplot::ParseKind::FieldCount,
                ParseErrorKind::NotNumeric => coplot::ParseKind::NotNumeric,
                ParseErrorKind::NegativeId => coplot::ParseKind::NegativeId,
                ParseErrorKind::NonFinite => coplot::ParseKind::NonFinite,
                ParseErrorKind::BadTimestamp => coplot::ParseKind::BadTimestamp,
                ParseErrorKind::BadRequest => coplot::ParseKind::BadRequest,
            },
            message: e.message,
        }
    }
}

/// Per-line accounting of one parse, mirrored into the per-format
/// `<format>.*` metrics when the `wl-obs` registry is armed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseReport {
    /// The format whose adapter produced this report.
    pub format: TraceFormat,
    /// Lines read, including blanks and comments.
    pub lines: usize,
    /// `Key: value` header comment lines absorbed.
    pub header_lines: usize,
    /// Blank or non-metadata comment lines skipped.
    pub ignored_lines: usize,
    /// Data lines parsed successfully (jobs for SWF/GWF, requests for web
    /// access logs).
    pub jobs: usize,
    /// Malformed data lines dropped, with location and typed reason
    /// (lenient parse only; the strict parse errors on the first).
    pub skipped: Vec<(usize, ParseErrorKind)>,
}

impl ParseReport {
    /// An empty report tagged with its format.
    pub fn new(format: TraceFormat) -> ParseReport {
        ParseReport {
            format,
            ..ParseReport::default()
        }
    }

    /// Number of dropped lines of one kind.
    pub fn skipped_of(&self, kind: ParseErrorKind) -> usize {
        self.skipped.iter().filter(|(_, k)| *k == kind).count()
    }

    pub(crate) fn record_metrics(&self) {
        // Counter names vary by format, so this goes through the dynamic
        // registry handles rather than the per-call-site `counter!` macro
        // (which interns one literal name per expansion).
        if !wl_obs::enabled() {
            return;
        }
        let reg = wl_obs::registry();
        reg.counter(self.format.lines_counter()).add(self.lines as u64);
        reg.counter(self.format.header_counter())
            .add(self.header_lines as u64);
        reg.counter(self.format.jobs_counter()).add(self.jobs as u64);
        for (_, kind) in &self.skipped {
            reg.counter(self.format.skip_counter(*kind)).add(1);
        }
    }
}

/// The shared line loop behind every adapter: blank lines are ignored,
/// `<comment>Key: value` lines become header metadata, other comment lines
/// are ignored, and everything else goes through `parse_record`. In strict
/// mode the first malformed record aborts the scan; in lenient mode it is
/// recorded in the report and skipped.
pub(crate) fn parse_lines<R>(
    format: TraceFormat,
    comment: char,
    strict: bool,
    text: &str,
    parse_record: impl Fn(&str, usize) -> Result<R, ParseError>,
) -> (
    BTreeMap<String, String>,
    Vec<R>,
    ParseReport,
    Option<ParseError>,
) {
    let mut header = BTreeMap::new();
    let mut records = Vec::new();
    let mut report = ParseReport::new(format);

    for (lineno, raw) in text.lines().enumerate() {
        report.lines += 1;
        let line = raw.trim();
        if line.is_empty() {
            report.ignored_lines += 1;
            continue;
        }
        if let Some(rest) = line.strip_prefix(comment) {
            if let Some((key, value)) = rest.split_once(':') {
                header.insert(key.trim().to_string(), value.trim().to_string());
                report.header_lines += 1;
            } else {
                report.ignored_lines += 1;
            }
            continue;
        }
        match parse_record(line, lineno + 1) {
            Ok(record) => {
                records.push(record);
                report.jobs += 1;
            }
            Err(e) => {
                report.skipped.push((e.line, e.kind));
                if strict {
                    return (header, records, report, Some(e));
                }
            }
        }
    }
    (header, records, report, None)
}

/// Read the machine metadata this workspace encodes in header comments
/// (`MaxNodes`/`MaxProcs`, plus the `SchedulerRank` / `AllocationRank`
/// extension keys), falling back to the supplied defaults.
pub(crate) fn meta_from_header(
    header: &BTreeMap<String, String>,
    default: TraceMeta,
) -> TraceMeta {
    let procs = header
        .get("MaxNodes")
        .or_else(|| header.get("MaxProcs"))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default.processors);
    let sched = header
        .get("SchedulerRank")
        .and_then(|v| v.trim().parse::<u8>().ok())
        .and_then(|r| match r {
            1 => Some(SchedulerFlexibility::BatchQueue),
            2 => Some(SchedulerFlexibility::Backfilling),
            3 => Some(SchedulerFlexibility::Gang),
            _ => None,
        })
        .unwrap_or(default.scheduler);
    let alloc = header
        .get("AllocationRank")
        .and_then(|v| v.trim().parse::<u8>().ok())
        .and_then(|r| match r {
            1 => Some(AllocationFlexibility::PowerOfTwoPartitions),
            2 => Some(AllocationFlexibility::Limited),
            3 => Some(AllocationFlexibility::Unlimited),
            _ => None,
        })
        .unwrap_or(default.allocation);
    TraceMeta::new(procs, sched, alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_total_and_unique() {
        let kinds = [
            ParseErrorKind::FieldCount,
            ParseErrorKind::NotNumeric,
            ParseErrorKind::NegativeId,
            ParseErrorKind::NonFinite,
            ParseErrorKind::BadTimestamp,
            ParseErrorKind::BadRequest,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn new_kinds_convert_to_coplot_error() {
        for (kind, want) in [
            (ParseErrorKind::BadTimestamp, coplot::ParseKind::BadTimestamp),
            (ParseErrorKind::BadRequest, coplot::ParseKind::BadRequest),
        ] {
            let e = ParseError {
                line: 3,
                kind,
                message: "x".into(),
            };
            let converted: coplot::CoplotError = e.into();
            match converted {
                coplot::CoplotError::Parse { line, kind, .. } => {
                    assert_eq!(line, 3);
                    assert_eq!(kind, want);
                }
                other => panic!("unexpected conversion: {other:?}"),
            }
        }
    }

    #[test]
    fn skip_counter_names_are_distinct_per_format() {
        let mut names: Vec<&str> = Vec::new();
        for format in [TraceFormat::Swf, TraceFormat::Gwf, TraceFormat::Weblog] {
            names.push(format.lines_counter());
            names.push(format.header_counter());
            names.push(format.jobs_counter());
            for kind in [
                ParseErrorKind::FieldCount,
                ParseErrorKind::NotNumeric,
                ParseErrorKind::NegativeId,
                ParseErrorKind::NonFinite,
                ParseErrorKind::BadTimestamp,
                ParseErrorKind::BadRequest,
            ] {
                names.push(format.skip_counter(kind));
            }
        }
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn report_accounting_identity_via_shared_loop() {
        let text = "; A: 1\n\n; plain comment\nok\nbad\n";
        let (header, records, report, first_err) =
            parse_lines(TraceFormat::Swf, ';', false, text, |line, lineno| {
                if line == "ok" {
                    Ok(())
                } else {
                    Err(ParseError {
                        line: lineno,
                        kind: ParseErrorKind::FieldCount,
                        message: "bad".into(),
                    })
                }
            });
        assert_eq!(header["A"], "1");
        assert_eq!(records.len(), 1);
        assert!(first_err.is_none());
        assert_eq!(report.lines, 5);
        assert_eq!(report.header_lines, 1);
        assert_eq!(report.ignored_lines, 2);
        assert_eq!(report.jobs, 1);
        assert_eq!(report.skipped, vec![(5, ParseErrorKind::FieldCount)]);
    }

    #[test]
    fn strict_mode_stops_at_first_error() {
        let text = "bad\nok\n";
        let (_, records, report, first_err) =
            parse_lines::<()>(TraceFormat::Gwf, '#', true, text, |_, lineno| {
                Err(ParseError {
                    line: lineno,
                    kind: ParseErrorKind::NotNumeric,
                    message: "bad".into(),
                })
            });
        assert!(records.is_empty());
        assert_eq!(first_err.unwrap().line, 1);
        assert_eq!(report.format, TraceFormat::Gwf);
    }
}
