//! Web access-log (Common Log Format) adapter.
//!
//! A CLF line is `host ident authuser [timestamp] "request" status bytes`.
//! Requests are not jobs, so this adapter buckets them: requests from one
//! host form a session until a gap longer than [`SESSION_GAP`] seconds, and
//! each session becomes one canonical [`JobRecord`] — arrival is the first
//! request, runtime spans the session, "parallelism" is the request count,
//! memory is the bytes transferred, the user is the host, and the
//! executable is the top-level path the session opened with. The machine's
//! "processors" are the server's peak concurrent sessions, so the load
//! variables keep their meaning (occupied session-seconds over available
//! capacity).
//!
//! Lines starting with `#` are comments (with `# Key: value` carrying
//! header metadata under the workspace keys, like the other adapters).

use crate::record::{JobRecord, JobStatus, MISSING, QUEUE_INTERACTIVE};
use crate::report::{meta_from_header, parse_lines, ParseError, ParseErrorKind, ParseReport};
use crate::trace::{NormalizedTrace, TraceMeta};
use crate::{TraceFormat, TraceSource};

/// A gap of more than this many seconds between two requests from the same
/// host starts a new session (the classic 30-second think-time cutoff from
/// web-workload characterization).
pub const SESSION_GAP: f64 = 30.0;

/// One parsed access-log request line.
#[derive(Debug, Clone, PartialEq)]
pub struct WebRequest {
    /// Client host (or IP) — the session key.
    pub host: String,
    /// Request time as seconds since the Unix epoch (UTC).
    pub time: f64,
    /// HTTP method ("GET", "POST", ...).
    pub method: String,
    /// Request path.
    pub path: String,
    /// HTTP status code.
    pub status: i64,
    /// Response size in bytes (0 for the CLF `-` placeholder).
    pub bytes: f64,
}

/// Parsed access log: header metadata plus requests in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct WeblogDocument {
    /// Header key/value pairs from `# Key: value` comment lines.
    pub header: std::collections::BTreeMap<String, String>,
    /// Requests in file order.
    pub requests: Vec<WebRequest>,
}

impl WeblogDocument {
    /// Bucket the requests into sessions and build a [`NormalizedTrace`].
    pub fn into_trace(self, name: impl Into<String>, default: TraceMeta) -> NormalizedTrace {
        let machine = meta_from_header(&self.header, default);
        sessions_to_trace(name, &self.requests, machine)
    }
}

/// Parse access-log text, erroring on the first malformed request line.
pub fn parse_weblog(text: &str) -> Result<WeblogDocument, ParseError> {
    let _span = wl_obs::span!("weblog.parse");
    let (header, requests, report, first_err) =
        parse_lines(TraceFormat::Weblog, '#', true, text, parse_request_line);
    report.record_metrics();
    match first_err {
        Some(e) => Err(e),
        None => Ok(WeblogDocument { header, requests }),
    }
}

/// Parse access-log text, skipping malformed request lines instead of
/// failing. Every dropped line is recorded in the [`ParseReport`] with its
/// typed [`ParseErrorKind`], and the matching `weblog.skip.*` counter is
/// incremented when observability is armed. Never panics on any input.
pub fn parse_weblog_lenient(text: &str) -> (WeblogDocument, ParseReport) {
    let _span = wl_obs::span!("weblog.parse");
    let (header, requests, report, _) =
        parse_lines(TraceFormat::Weblog, '#', false, text, parse_request_line);
    report.record_metrics();
    (WeblogDocument { header, requests }, report)
}

/// Split a CLF line into tokens, keeping `[...]` and `"..."` groups whole
/// (delimiters stripped). An unterminated group is a structural error.
fn tokenize_clf(line: &str, lineno: usize) -> Result<Vec<String>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        let (close, strip) = match c {
            '[' => (Some(']'), true),
            '"' => (Some('"'), true),
            _ => (None, false),
        };
        if strip {
            chars.next(); // consume the opener
        }
        let mut token = String::new();
        let mut terminated = close.is_none();
        for ch in chars.by_ref() {
            match close {
                Some(end) if ch == end => {
                    terminated = true;
                    break;
                }
                None if ch.is_whitespace() => break,
                _ => token.push(ch),
            }
        }
        if !terminated {
            return Err(ParseError {
                line: lineno,
                kind: ParseErrorKind::FieldCount,
                message: format!("unterminated {c} group"),
            });
        }
        tokens.push(token);
    }
    Ok(tokens)
}

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

// Days since 1970-01-01 for a proleptic-Gregorian civil date
// (Howard Hinnant's days_from_civil).
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

// Inverse of `days_from_civil` (civil_from_days), for the writer.
fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Decode a CLF timestamp (`10/Oct/1999:13:55:36 +0000`, brackets already
/// stripped) into seconds since the Unix epoch.
pub fn parse_clf_time(s: &str) -> Option<f64> {
    let (datetime, zone) = s.split_once(' ')?;
    let mut parts = datetime.split(':');
    let date = parts.next()?;
    let hh: i64 = parts.next()?.parse().ok()?;
    let mm: i64 = parts.next()?.parse().ok()?;
    let ss: i64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(0..24).contains(&hh) || !(0..60).contains(&mm) {
        return None;
    }
    // Leap seconds show up as :60 in some logs; clamp rather than reject.
    if !(0..61).contains(&ss) {
        return None;
    }
    let mut date_parts = date.split('/');
    let day: i64 = date_parts.next()?.parse().ok()?;
    let mon = date_parts.next()?;
    let year: i64 = date_parts.next()?.parse().ok()?;
    if date_parts.next().is_some() || !(1..=31).contains(&day) {
        return None;
    }
    let month = MONTHS.iter().position(|m| m.eq_ignore_ascii_case(mon))? as i64 + 1;
    // Zone is +HHMM or -HHMM; local time minus the offset is UTC.
    let (sign, digits) = match zone.as_bytes().first()? {
        b'+' => (1i64, &zone[1..]),
        b'-' => (-1i64, &zone[1..]),
        _ => return None,
    };
    if digits.len() != 4 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let zh: i64 = digits[..2].parse().ok()?;
    let zm: i64 = digits[2..].parse().ok()?;
    let offset = sign * (zh * 3600 + zm * 60);
    let days = days_from_civil(year, month, day);
    Some((days * 86400 + hh * 3600 + mm * 60 + ss.min(59) - offset) as f64)
}

/// Format an epoch second as a bracketed CLF timestamp in UTC
/// (`[10/Oct/1999:13:55:36 +0000]`). Inverse of [`parse_clf_time`] for
/// whole seconds.
pub fn fmt_clf_time(epoch: f64) -> String {
    let t = epoch as i64;
    let days = t.div_euclid(86400);
    let secs = t.rem_euclid(86400);
    let (y, m, d) = civil_from_days(days);
    format!(
        "[{:02}/{}/{}:{:02}:{:02}:{:02} +0000]",
        d,
        MONTHS[(m - 1) as usize],
        y,
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

fn parse_request_line(line: &str, lineno: usize) -> Result<WebRequest, ParseError> {
    let tokens = tokenize_clf(line, lineno)?;
    if tokens.len() != 7 {
        return Err(ParseError {
            line: lineno,
            kind: ParseErrorKind::FieldCount,
            message: format!(
                "expected 7 CLF fields (host ident authuser [time] \"request\" status bytes), \
                 found {}",
                tokens.len()
            ),
        });
    }
    let time = parse_clf_time(&tokens[3]).ok_or_else(|| ParseError {
        line: lineno,
        kind: ParseErrorKind::BadTimestamp,
        message: format!("bad CLF timestamp: {:?}", tokens[3]),
    })?;
    let mut req_parts = tokens[4].split_whitespace();
    let (method, path) = match (req_parts.next(), req_parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return Err(ParseError {
                line: lineno,
                kind: ParseErrorKind::BadRequest,
                message: format!("bad request line: {:?}", tokens[4]),
            })
        }
    };
    let status: i64 = tokens[5].parse().map_err(|_| ParseError {
        line: lineno,
        kind: ParseErrorKind::NotNumeric,
        message: format!("status is not numeric: {:?}", tokens[5]),
    })?;
    let bytes = if tokens[6] == "-" {
        0.0
    } else {
        let v: f64 = tokens[6].parse().map_err(|_| ParseError {
            line: lineno,
            kind: ParseErrorKind::NotNumeric,
            message: format!("bytes is not numeric: {:?}", tokens[6]),
        })?;
        if !v.is_finite() {
            return Err(ParseError {
                line: lineno,
                kind: ParseErrorKind::NonFinite,
                message: format!("bytes is not finite: {:?}", tokens[6]),
            });
        }
        v
    };
    Ok(WebRequest {
        host: tokens[0].clone(),
        time,
        method,
        path,
        status,
        bytes,
    })
}

/// Bucket requests into per-host sessions (split on gaps over
/// [`SESSION_GAP`]) and build the canonical trace. Deterministic: sessions
/// are ordered by start time with ties broken by host first appearance, and
/// ids are assigned in that order. The machine's processor count is the
/// peak number of concurrently open sessions (at least 1); the supplied
/// metadata contributes the scheduler/allocation ranks, and its processor
/// count is used only when the log has no sessions at all.
pub fn sessions_to_trace(
    name: impl Into<String>,
    requests: &[WebRequest],
    machine: TraceMeta,
) -> NormalizedTrace {
    // Host index by first appearance = stable user ids across runs.
    let mut hosts: Vec<&str> = Vec::new();
    let mut exes: Vec<&str> = Vec::new();
    let mut host_of = Vec::with_capacity(requests.len());
    let mut exe_of = Vec::with_capacity(requests.len());
    for r in requests {
        let h = match hosts.iter().position(|h| *h == r.host) {
            Some(i) => i,
            None => {
                hosts.push(&r.host);
                hosts.len() - 1
            }
        };
        host_of.push(h);
        let seg = r.path.trim_start_matches('/').split('/').next().unwrap_or("");
        let e = match exes.iter().position(|s| *s == seg) {
            Some(i) => i,
            None => {
                exes.push(seg);
                exes.len() - 1
            }
        };
        exe_of.push(e);
    }

    // Per-host request streams in time order (stable: file order breaks
    // timestamp ties).
    let mut by_host: Vec<Vec<usize>> = vec![Vec::new(); hosts.len()];
    for (i, &h) in host_of.iter().enumerate() {
        by_host[h].push(i);
    }
    for stream in &mut by_host {
        stream.sort_by(|&a, &b| requests[a].time.total_cmp(&requests[b].time));
    }

    struct Session {
        host: usize,
        exe: usize,
        start: f64,
        end: f64,
        count: usize,
        bytes: f64,
        all_ok: bool,
    }

    let mut sessions: Vec<Session> = Vec::new();
    for (h, stream) in by_host.iter().enumerate() {
        let mut current: Option<Session> = None;
        for &i in stream {
            let r = &requests[i];
            let split = match &current {
                Some(s) => r.time - s.end > SESSION_GAP,
                None => true,
            };
            if split {
                if let Some(s) = current.take() {
                    sessions.push(s);
                }
                current = Some(Session {
                    host: h,
                    exe: exe_of[i],
                    start: r.time,
                    end: r.time,
                    count: 0,
                    bytes: 0.0,
                    all_ok: true,
                });
            }
            let s = current.as_mut().unwrap();
            s.end = r.time;
            s.count += 1;
            s.bytes += r.bytes;
            s.all_ok &= r.status < 400;
        }
        if let Some(s) = current.take() {
            sessions.push(s);
        }
    }
    // Deterministic global order: start time, host-index tiebreak (sessions
    // were pushed host by host, so a stable sort on start time alone keeps
    // the host order for ties).
    sessions.sort_by(|a, b| a.start.total_cmp(&b.start));

    // Peak concurrent sessions = the server's effective "processors".
    // Closing events sort before openings at the same instant so abutting
    // sessions don't double-count.
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(sessions.len() * 2);
    for s in &sessions {
        let run = (s.end - s.start) + 1.0;
        events.push((s.start, 1));
        events.push((s.start + run, -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut open = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        open += delta;
        peak = peak.max(open);
    }
    let processors = if sessions.is_empty() {
        machine.processors
    } else {
        peak.max(1) as u64
    };

    let jobs: Vec<JobRecord> = sessions
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut j = JobRecord::new(i as u64 + 1, s.start);
            j.wait_time = 0.0;
            // A one-request session still occupies the server briefly.
            j.run_time = (s.end - s.start) + 1.0;
            j.used_procs = s.count as i64;
            j.avg_cpu_time = MISSING;
            j.used_memory = s.bytes / 1024.0;
            j.status = if s.all_ok {
                JobStatus::Completed
            } else {
                JobStatus::Failed
            };
            j.user_id = s.host as i64;
            j.executable_id = s.exe as i64;
            j.queue = QUEUE_INTERACTIVE;
            j
        })
        .collect();

    NormalizedTrace::new(
        name,
        TraceMeta::new(processors, machine.scheduler, machine.allocation),
        jobs,
    )
}

/// The web access-log adapter.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeblogSource;

impl TraceSource for WeblogSource {
    fn format(&self) -> TraceFormat {
        TraceFormat::Weblog
    }

    fn read(
        &self,
        name: &str,
        text: &str,
        default: TraceMeta,
    ) -> Result<NormalizedTrace, ParseError> {
        parse_weblog(text).map(|doc| doc.into_trace(name, default))
    }

    fn read_lenient(
        &self,
        name: &str,
        text: &str,
        default: TraceMeta,
    ) -> (NormalizedTrace, ParseReport) {
        let (doc, report) = parse_weblog_lenient(text);
        (doc.into_trace(name, default), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AllocationFlexibility, SchedulerFlexibility};

    fn machine() -> TraceMeta {
        TraceMeta::new(
            8,
            SchedulerFlexibility::BatchQueue,
            AllocationFlexibility::Unlimited,
        )
    }

    const SAMPLE: &str = "\
# Server: test
alpha.example.com - - [01/Jan/1999:00:00:00 +0000] \"GET /docs/a.html HTTP/1.0\" 200 1024
alpha.example.com - - [01/Jan/1999:00:00:10 +0000] \"GET /docs/b.html HTTP/1.0\" 200 2048
beta.example.com - - [01/Jan/1999:00:00:05 +0000] \"GET /img/logo.gif HTTP/1.0\" 404 -
alpha.example.com - - [01/Jan/1999:00:05:00 +0000] \"GET /docs/c.html HTTP/1.0\" 200 512
";

    #[test]
    fn clf_time_round_trips() {
        // 1999-01-01 00:00:00 UTC.
        assert_eq!(
            parse_clf_time("01/Jan/1999:00:00:00 +0000"),
            Some(915148800.0)
        );
        // Zone offsets shift toward UTC.
        assert_eq!(
            parse_clf_time("01/Jan/1999:01:00:00 +0100"),
            Some(915148800.0)
        );
        assert_eq!(
            parse_clf_time("31/Dec/1998:23:00:00 -0100"),
            Some(915148800.0)
        );
        for epoch in [0.0, 915148800.0, 939736536.0] {
            let formatted = fmt_clf_time(epoch);
            let inner = formatted.trim_start_matches('[').trim_end_matches(']');
            assert_eq!(parse_clf_time(inner), Some(epoch), "{formatted}");
        }
    }

    #[test]
    fn bad_timestamps_are_typed() {
        for bad in [
            "32/Jan/1999:00:00:00 +0000",
            "01/Foo/1999:00:00:00 +0000",
            "01/Jan/1999:25:00:00 +0000",
            "01/Jan/1999:00:00:00 0000",
            "01/Jan/1999:00:00:00 +00x0",
            "garbage",
        ] {
            assert_eq!(parse_clf_time(bad), None, "{bad}");
        }
        let line = "h - - [garbage] \"GET / HTTP/1.0\" 200 1\n";
        assert_eq!(
            parse_weblog(line).unwrap_err().kind,
            ParseErrorKind::BadTimestamp
        );
    }

    #[test]
    fn parses_sample_requests() {
        let doc = parse_weblog(SAMPLE).unwrap();
        assert_eq!(doc.header["Server"], "test");
        assert_eq!(doc.requests.len(), 4);
        assert_eq!(doc.requests[0].host, "alpha.example.com");
        assert_eq!(doc.requests[0].method, "GET");
        assert_eq!(doc.requests[0].path, "/docs/a.html");
        assert_eq!(doc.requests[0].status, 200);
        assert_eq!(doc.requests[2].bytes, 0.0); // CLF "-" placeholder
    }

    #[test]
    fn typed_errors_for_each_malformation() {
        let cases = [
            ("h - - [01/Jan/1999:00:00:00 +0000] \"GET /\" 200", ParseErrorKind::FieldCount),
            (
                "h - - [01/Jan/1999:00:00:00 +0000] \"G\" 200 1",
                ParseErrorKind::BadRequest,
            ),
            (
                "h - - [01/Jan/1999:00:00:00 +0000] \"GET / HTTP/1.0\" abc 1",
                ParseErrorKind::NotNumeric,
            ),
            (
                "h - - [01/Jan/1999:00:00:00 +0000] \"GET / HTTP/1.0\" 200 inf",
                ParseErrorKind::NonFinite,
            ),
            (
                "h - - [01/Jan/1999:00:00:00 +0000] \"GET / HTTP/1.0 200 1",
                ParseErrorKind::FieldCount, // unterminated quote group
            ),
        ];
        for (line, kind) in cases {
            assert_eq!(parse_weblog(line).unwrap_err().kind, kind, "{line}");
        }
    }

    #[test]
    fn sessions_bucket_by_host_and_gap() {
        let trace = WeblogSource.read("web", SAMPLE, machine()).unwrap();
        // alpha: two requests 10s apart = one session, then a 290s gap =
        // second session; beta: one session. Three jobs total.
        assert_eq!(trace.len(), 3);
        let jobs = trace.jobs();
        // Ordered by start: alpha(0s), beta(5s), alpha(300s).
        assert_eq!(jobs[0].used_procs, 2); // two requests
        assert_eq!(jobs[0].run_time, 11.0); // 10s span + 1
        assert_eq!(jobs[0].status, JobStatus::Completed);
        assert_eq!(jobs[1].used_procs, 1);
        assert_eq!(jobs[1].status, JobStatus::Failed); // the 404
        assert_eq!(jobs[2].used_procs, 1);
        // Same host keeps the same user id across sessions.
        assert_eq!(jobs[0].user_id, jobs[2].user_id);
        assert_ne!(jobs[0].user_id, jobs[1].user_id);
        // Top-level path segment is the "executable".
        assert_eq!(jobs[0].executable_id, jobs[2].executable_id); // docs
        assert_ne!(jobs[0].executable_id, jobs[1].executable_id); // img
        // All sessions are interactive, bytes land in used_memory.
        assert!(jobs.iter().all(|j| j.is_interactive()));
        assert!((jobs[0].used_memory - 3.0).abs() < 1e-12); // 3072 bytes
        // Peak concurrency: alpha's first session overlaps beta's.
        assert_eq!(trace.machine.processors, 2);
    }

    #[test]
    fn empty_log_keeps_default_machine() {
        let trace = WeblogSource.read("web", "# Server: x\n", machine()).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.machine.processors, machine().processors);
    }

    #[test]
    fn lenient_parse_counts_per_kind() {
        wl_obs::set_enabled(true);
        let snap = wl_obs::registry().snapshot();
        let before = (
            snap.counter("weblog.skip.bad_timestamp"),
            snap.counter("weblog.jobs_parsed"),
        );
        let text = format!("{SAMPLE}h - - [garbage] \"GET / HTTP/1.0\" 200 1\n");
        let (doc, report) = parse_weblog_lenient(&text);
        assert_eq!(doc.requests.len(), 4);
        assert_eq!(report.format, TraceFormat::Weblog);
        assert_eq!(report.skipped, vec![(6, ParseErrorKind::BadTimestamp)]);
        let snap = wl_obs::registry().snapshot();
        assert!(snap.counter("weblog.skip.bad_timestamp") > before.0);
        assert!(snap.counter("weblog.jobs_parsed") >= before.1 + 4);
    }

    #[test]
    fn truncated_file_mid_line_never_panics() {
        let text = SAMPLE;
        for cut in 0..=text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let prefix = &text[..cut];
            let _ = parse_weblog(prefix);
            let (doc, report) = parse_weblog_lenient(prefix);
            assert_eq!(doc.requests.len(), report.jobs);
        }
    }

    #[test]
    fn bucketing_is_deterministic() {
        let a = WeblogSource.read("web", SAMPLE, machine()).unwrap();
        let b = WeblogSource.read("web", SAMPLE, machine()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical_digest(), b.canonical_digest());
    }

    mod fuzz {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Neither parser panics on arbitrary text, and the lenient one
            /// accounts for every line.
            #[test]
            fn parsers_never_panic_on_arbitrary_text(text in "\\PC*") {
                let _ = parse_weblog(&text);
                let (doc, report) = parse_weblog_lenient(&text);
                prop_assert_eq!(doc.requests.len(), report.jobs);
                prop_assert_eq!(
                    report.jobs + report.skipped.len() + report.header_lines
                        + report.ignored_lines,
                    report.lines
                );
            }

            /// Corrupting one token of a valid request line yields a typed
            /// error or a clean parse — never a panic — and sessionization
            /// of whatever survives never panics either.
            #[test]
            fn corrupted_token_gives_typed_error(
                field in 0usize..7,
                garbage in "[ -~]{0,20}",
            ) {
                let mut tokens = [
                    "h".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "[01/Jan/1999:00:00:00 +0000]".to_string(),
                    "\"GET /a/b HTTP/1.0\"".to_string(),
                    "200".to_string(),
                    "77".to_string(),
                ];
                tokens[field] = garbage;
                let line = tokens.join(" ");
                match parse_weblog(&line) {
                    Ok(doc) => {
                        let trace = doc.into_trace(
                            "f",
                            TraceMeta::new(
                                4,
                                crate::trace::SchedulerFlexibility::BatchQueue,
                                crate::trace::AllocationFlexibility::Unlimited,
                            ),
                        );
                        prop_assert!(trace.len() <= 2);
                    }
                    Err(e) => {
                        prop_assert!(e.line >= 1);
                        let _ = e.kind.label();
                    }
                }
            }
        }
    }
}
