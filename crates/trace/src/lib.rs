//! `wl-trace`: the pluggable trace-ingestion layer.
//!
//! The paper's Co-plot method is format-agnostic — it only needs the
//! Table-1 derived variables — so this crate makes the rest of the stack
//! format-agnostic too. Every on-disk trace format is an adapter
//! implementing [`TraceSource`], and every adapter yields the same
//! canonical shape: a [`NormalizedTrace`] of [`JobRecord`]s plus
//! [`TraceMeta`]. Downstream layers (the derived-variable engine, the
//! dataset registry, the server, the CLI) consume only the canonical
//! stream, which is why one `wl coplot` invocation can place
//! supercomputer, grid, and web workloads on the same map.
//!
//! Adapters shipped here:
//! - [`swf::SwfSource`] — Standard Workload Format (18 fields, `;` headers)
//! - [`gwf::GwfSource`] — Grid Workloads Archive format (29 fields, `#`
//!   comments; the first 16 fields mirror SWF)
//! - [`weblog::WeblogSource`] — Common Log Format access logs, bucketed
//!   into session jobs
//!
//! plus deterministic synthetic families per format in [`synth`], so
//! everything is testable offline.

pub mod gwf;
pub mod record;
pub mod report;
pub mod stats;
pub mod swf;
pub mod synth;
pub mod trace;
pub mod weblog;
pub mod window;

pub use gwf::{parse_gwf, parse_gwf_lenient, write_gwf, GwfDocument, GwfSource};
pub use record::{JobRecord, JobStatus, MISSING, QUEUE_BATCH, QUEUE_INTERACTIVE};
pub use report::{ParseError, ParseErrorKind, ParseReport};
pub use stats::{TraceStats, Variable, INTERVAL_WIDTH, NORMALIZED_MACHINE};
pub use swf::{parse_swf, parse_swf_lenient, write_swf, SwfDocument, SwfSource};
pub use trace::{
    AllocationFlexibility, NormalizedTrace, SchedulerFlexibility, TraceMeta,
};
pub use weblog::{
    parse_weblog, parse_weblog_lenient, sessions_to_trace, WebRequest, WeblogDocument,
    WeblogSource, SESSION_GAP,
};
pub use window::WindowStatsBuilder;

/// A trace file format with a registered adapter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TraceFormat {
    /// Standard Workload Format — the default, and the paper's native
    /// format.
    #[default]
    Swf,
    /// Grid Workloads Archive format.
    Gwf,
    /// Web server access log (Common Log Format).
    Weblog,
}

static SWF_SOURCE: SwfSource = SwfSource;
static GWF_SOURCE: GwfSource = GwfSource;
static WEBLOG_SOURCE: WeblogSource = WeblogSource;

impl TraceFormat {
    /// Every format with an adapter, in declaration order.
    pub const ALL: [TraceFormat; 3] = [TraceFormat::Swf, TraceFormat::Gwf, TraceFormat::Weblog];

    /// Stable lowercase label ("swf", "gwf", "weblog") — the value of the
    /// request API's `format` field and the server's dataset listings.
    pub fn label(&self) -> &'static str {
        match self {
            TraceFormat::Swf => "swf",
            TraceFormat::Gwf => "gwf",
            TraceFormat::Weblog => "weblog",
        }
    }

    /// Look a format up by its label.
    pub fn from_label(label: &str) -> Option<TraceFormat> {
        TraceFormat::ALL.iter().copied().find(|f| f.label() == label)
    }

    /// The adapter for this format.
    pub fn source(&self) -> &'static dyn TraceSource {
        match self {
            TraceFormat::Swf => &SWF_SOURCE,
            TraceFormat::Gwf => &GWF_SOURCE,
            TraceFormat::Weblog => &WEBLOG_SOURCE,
        }
    }

    /// Guess the format of a trace from its path and contents. The
    /// extension wins (`.swf`, `.gwf`, `.log`/`.clf`); otherwise the first
    /// data line decides: `;` starts an SWF header, a
    /// bracketed-timestamp-and-quoted-request shape is an access log, a
    /// 29-field line is GWF, and anything else defaults to SWF. `#` comment
    /// lines (shared by GWF and our weblog fixtures) are skipped; a file of
    /// only `#` comments reads as GWF.
    pub fn detect(path: &str, text: &str) -> TraceFormat {
        let ext = std::path::Path::new(path)
            .extension()
            .and_then(|e| e.to_str())
            .map(|e| e.to_ascii_lowercase());
        match ext.as_deref() {
            Some("swf") => return TraceFormat::Swf,
            Some("gwf") => return TraceFormat::Gwf,
            Some("log") | Some("clf") => return TraceFormat::Weblog,
            _ => {}
        }
        let mut saw_comment = false;
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('#') {
                saw_comment = true;
                continue;
            }
            if line.starts_with(';') {
                return TraceFormat::Swf;
            }
            if line.contains('[') && line.contains('"') {
                return TraceFormat::Weblog;
            }
            if line.split_whitespace().count() == gwf::GWF_FIELDS {
                return TraceFormat::Gwf;
            }
            return TraceFormat::Swf;
        }
        if saw_comment {
            TraceFormat::Gwf
        } else {
            TraceFormat::Swf
        }
    }

    /// Name of the counter tallying lines read by this format's parser.
    pub fn lines_counter(&self) -> &'static str {
        match self {
            TraceFormat::Swf => "swf.lines",
            TraceFormat::Gwf => "gwf.lines",
            TraceFormat::Weblog => "weblog.lines",
        }
    }

    /// Name of the counter tallying header lines absorbed.
    pub fn header_counter(&self) -> &'static str {
        match self {
            TraceFormat::Swf => "swf.header_lines",
            TraceFormat::Gwf => "gwf.header_lines",
            TraceFormat::Weblog => "weblog.header_lines",
        }
    }

    /// Name of the counter tallying data records parsed.
    pub fn jobs_counter(&self) -> &'static str {
        match self {
            TraceFormat::Swf => "swf.jobs_parsed",
            TraceFormat::Gwf => "gwf.jobs_parsed",
            TraceFormat::Weblog => "weblog.jobs_parsed",
        }
    }

    /// Name of the skip counter incremented when a lenient parse drops a
    /// line of the given kind.
    pub fn skip_counter(&self, kind: ParseErrorKind) -> &'static str {
        match self {
            TraceFormat::Swf => match kind {
                ParseErrorKind::FieldCount => "swf.skip.field_count",
                ParseErrorKind::NotNumeric => "swf.skip.not_numeric",
                ParseErrorKind::NegativeId => "swf.skip.negative_id",
                ParseErrorKind::NonFinite => "swf.skip.non_finite",
                ParseErrorKind::BadTimestamp => "swf.skip.bad_timestamp",
                ParseErrorKind::BadRequest => "swf.skip.bad_request",
            },
            TraceFormat::Gwf => match kind {
                ParseErrorKind::FieldCount => "gwf.skip.field_count",
                ParseErrorKind::NotNumeric => "gwf.skip.not_numeric",
                ParseErrorKind::NegativeId => "gwf.skip.negative_id",
                ParseErrorKind::NonFinite => "gwf.skip.non_finite",
                ParseErrorKind::BadTimestamp => "gwf.skip.bad_timestamp",
                ParseErrorKind::BadRequest => "gwf.skip.bad_request",
            },
            TraceFormat::Weblog => match kind {
                ParseErrorKind::FieldCount => "weblog.skip.field_count",
                ParseErrorKind::NotNumeric => "weblog.skip.not_numeric",
                ParseErrorKind::NegativeId => "weblog.skip.negative_id",
                ParseErrorKind::NonFinite => "weblog.skip.non_finite",
                ParseErrorKind::BadTimestamp => "weblog.skip.bad_timestamp",
                ParseErrorKind::BadRequest => "weblog.skip.bad_request",
            },
        }
    }
}

/// A pluggable trace reader: parses one on-disk format into the canonical
/// [`NormalizedTrace`]. Object-safe so callers can pick an adapter at
/// runtime via [`TraceFormat::source`].
pub trait TraceSource: Sync {
    /// Which format this adapter reads.
    fn format(&self) -> TraceFormat;

    /// Parse `text` strictly, erroring on the first malformed record.
    /// `name` becomes the trace's display name; `default` supplies machine
    /// metadata not recoverable from the trace itself.
    fn read(
        &self,
        name: &str,
        text: &str,
        default: TraceMeta,
    ) -> Result<NormalizedTrace, ParseError>;

    /// Parse `text` leniently, dropping malformed records and accounting
    /// for every line in the returned [`ParseReport`].
    fn read_lenient(&self, name: &str, text: &str, default: TraceMeta)
        -> (NormalizedTrace, ParseReport);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for f in TraceFormat::ALL {
            assert_eq!(TraceFormat::from_label(f.label()), Some(f));
            assert_eq!(f.source().format(), f);
        }
        assert_eq!(TraceFormat::from_label("synthetic"), None);
        assert_eq!(TraceFormat::from_label("SWF"), None); // labels are lowercase
    }

    #[test]
    fn default_format_is_swf() {
        assert_eq!(TraceFormat::default(), TraceFormat::Swf);
    }

    #[test]
    fn detection_by_extension() {
        assert_eq!(TraceFormat::detect("a/ctc.swf", ""), TraceFormat::Swf);
        assert_eq!(TraceFormat::detect("b/das2.GWF", ""), TraceFormat::Gwf);
        assert_eq!(TraceFormat::detect("c/access.log", ""), TraceFormat::Weblog);
        assert_eq!(TraceFormat::detect("c/access.clf", ""), TraceFormat::Weblog);
    }

    #[test]
    fn detection_by_content() {
        assert_eq!(
            TraceFormat::detect("x", "; Computer: T\n"),
            TraceFormat::Swf
        );
        assert_eq!(TraceFormat::detect("x", "# Site: G\n"), TraceFormat::Gwf);
        // Comments are skipped; the first data line decides.
        let gwf_body = format!("# Site: G\n1 {}\n", vec!["-1"; gwf::GWF_FIELDS - 1].join(" "));
        assert_eq!(TraceFormat::detect("x", &gwf_body), TraceFormat::Gwf);
        assert_eq!(
            TraceFormat::detect(
                "x",
                "h - - [01/Jan/1999:00:00:00 +0000] \"GET / HTTP/1.0\" 200 1\n"
            ),
            TraceFormat::Weblog
        );
        let gwf_line = format!("1 {}\n", vec!["-1"; gwf::GWF_FIELDS - 1].join(" "));
        assert_eq!(TraceFormat::detect("x", &gwf_line), TraceFormat::Gwf);
        // 18 bare fields (or anything else) defaults to SWF.
        assert_eq!(
            TraceFormat::detect("x", "1 0 5 100 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1\n"),
            TraceFormat::Swf
        );
        assert_eq!(TraceFormat::detect("x", ""), TraceFormat::Swf);
    }

    #[test]
    fn every_source_reads_its_own_synthetic_family() {
        let default = TraceMeta::new(
            8,
            SchedulerFlexibility::BatchQueue,
            AllocationFlexibility::Unlimited,
        );
        let gwf_text = synth::grid_site_text(0, 10, 1);
        let web_text = synth::web_server_text(0, 10, 1);
        assert_eq!(TraceFormat::detect("x", &gwf_text), TraceFormat::Gwf);
        assert_eq!(TraceFormat::detect("y", &web_text), TraceFormat::Weblog);
        let trace = TraceFormat::Weblog
            .source()
            .read("w", &web_text, default)
            .unwrap();
        assert!(!trace.is_empty());
    }
}
