//! GWF (Grid Workloads Archive format) reader and writer.
//!
//! A GWF file is line-oriented like SWF: comment lines start with `#` (with
//! `# Key: value` carrying metadata under the same header keys this
//! workspace uses for SWF), and every other non-empty line is one job with
//! 29 whitespace-separated fields. The first 16 fields mirror SWF fields
//! 1–16 (id, submit, wait, run, procs, CPU, memory, requests, status, user,
//! group, executable, queue, partition); the trailing 13 grid-specific
//! fields (site ids, job structure, network, disk, VO, project) must be
//! present but are not interpreted — the canonical [`JobRecord`] has no
//! slots for them, and the Table-1 variables never look at them.

use std::collections::BTreeMap;

use crate::record::{JobRecord, JobStatus};
use crate::report::{meta_from_header, parse_lines, ParseError, ParseErrorKind, ParseReport};
use crate::swf::{fmt_f, integer_field, numeric_field};
use crate::trace::{NormalizedTrace, TraceMeta};
use crate::{TraceFormat, TraceSource};

/// Number of whitespace-separated fields in one GWF job line.
pub const GWF_FIELDS: usize = 29;

/// Parsed GWF document: header metadata plus jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct GwfDocument {
    /// Header key/value pairs from `# Key: value` comment lines.
    pub header: BTreeMap<String, String>,
    /// Jobs in file order.
    pub jobs: Vec<JobRecord>,
}

impl GwfDocument {
    /// Turn the document into a [`NormalizedTrace`], reading machine
    /// metadata from the header under the same keys as the SWF adapter.
    pub fn into_trace(self, name: impl Into<String>, default: TraceMeta) -> NormalizedTrace {
        let machine = meta_from_header(&self.header, default);
        NormalizedTrace::new(name, machine, self.jobs)
    }
}

/// Parse GWF text into a document, erroring on the first malformed job line.
pub fn parse_gwf(text: &str) -> Result<GwfDocument, ParseError> {
    let _span = wl_obs::span!("gwf.parse");
    let (header, jobs, report, first_err) =
        parse_lines(TraceFormat::Gwf, '#', true, text, parse_job_line);
    report.record_metrics();
    match first_err {
        Some(e) => Err(e),
        None => Ok(GwfDocument { header, jobs }),
    }
}

/// Parse GWF text, skipping malformed job lines instead of failing.
///
/// Every dropped line is recorded in the [`ParseReport`] with its typed
/// [`ParseErrorKind`], and the matching `gwf.skip.*` counter is incremented
/// when observability is armed. Never panics on any input.
pub fn parse_gwf_lenient(text: &str) -> (GwfDocument, ParseReport) {
    let _span = wl_obs::span!("gwf.parse");
    let (header, jobs, report, _) =
        parse_lines(TraceFormat::Gwf, '#', false, text, parse_job_line);
    report.record_metrics();
    (GwfDocument { header, jobs }, report)
}

fn parse_job_line(line: &str, lineno: usize) -> Result<JobRecord, ParseError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != GWF_FIELDS {
        return Err(ParseError {
            line: lineno,
            kind: ParseErrorKind::FieldCount,
            message: format!("expected {GWF_FIELDS} fields, found {}", fields.len()),
        });
    }
    let f = |i: usize| numeric_field(&fields, i, lineno);
    let int = |i: usize| integer_field(&fields, i, lineno);
    let id = int(0)?;
    if id < 0 {
        return Err(ParseError {
            line: lineno,
            kind: ParseErrorKind::NegativeId,
            message: format!("job id must be non-negative, found {id}"),
        });
    }
    let mut j = JobRecord::new(id as u64, f(1)?);
    j.wait_time = f(2)?;
    j.run_time = f(3)?;
    j.used_procs = int(4)?;
    j.avg_cpu_time = f(5)?;
    j.used_memory = f(6)?;
    j.requested_procs = int(7)?;
    j.requested_time = f(8)?;
    j.requested_memory = f(9)?;
    j.status = JobStatus::from_code(int(10)?);
    j.user_id = int(11)?;
    j.group_id = int(12)?;
    j.executable_id = int(13)?;
    j.queue = int(14)?;
    j.partition = int(15)?;
    // Fields 17..29 (orig/last-run site, job structure, network, disk,
    // resources, VO, project) are grid-specific: required present,
    // deliberately uninterpreted.
    Ok(j)
}

/// Serialize a trace to GWF text with the workspace header keys, so a later
/// [`parse_gwf`] + [`GwfDocument::into_trace`] round trip preserves it. The
/// 13 grid-specific tail fields are written as `-1` (unknown).
pub fn write_gwf(trace: &NormalizedTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("# Site: {}\n", trace.name));
    out.push_str(&format!("# MaxNodes: {}\n", trace.machine.processors));
    out.push_str(&format!(
        "# SchedulerRank: {}\n",
        trace.machine.scheduler.rank()
    ));
    out.push_str(&format!(
        "# AllocationRank: {}\n",
        trace.machine.allocation.rank()
    ));
    out.push_str(&format!("# MaxJobs: {}\n", trace.len()));
    for j in trace.jobs() {
        let mut fields = vec![
            j.id.to_string(),
            fmt_f(j.submit_time),
            fmt_f(j.wait_time),
            fmt_f(j.run_time),
            j.used_procs.to_string(),
            fmt_f(j.avg_cpu_time),
            fmt_f(j.used_memory),
            j.requested_procs.to_string(),
            fmt_f(j.requested_time),
            fmt_f(j.requested_memory),
            j.status.code().to_string(),
            j.user_id.to_string(),
            j.group_id.to_string(),
            j.executable_id.to_string(),
            j.queue.to_string(),
            j.partition.to_string(),
        ];
        fields.extend(std::iter::repeat_n("-1".to_string(), GWF_FIELDS - 16));
        out.push_str(&fields.join(" "));
        out.push('\n');
    }
    out
}

/// The GWF adapter.
#[derive(Debug, Clone, Copy, Default)]
pub struct GwfSource;

impl TraceSource for GwfSource {
    fn format(&self) -> TraceFormat {
        TraceFormat::Gwf
    }

    fn read(
        &self,
        name: &str,
        text: &str,
        default: TraceMeta,
    ) -> Result<NormalizedTrace, ParseError> {
        parse_gwf(text).map(|doc| doc.into_trace(name, default))
    }

    fn read_lenient(
        &self,
        name: &str,
        text: &str,
        default: TraceMeta,
    ) -> (NormalizedTrace, ParseReport) {
        let (doc, report) = parse_gwf_lenient(text);
        (doc.into_trace(name, default), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AllocationFlexibility, SchedulerFlexibility};

    fn machine() -> TraceMeta {
        TraceMeta::new(
            256,
            SchedulerFlexibility::BatchQueue,
            AllocationFlexibility::Unlimited,
        )
    }

    fn good_line(id: u64) -> String {
        // 16 SWF-equivalent fields + 13 grid tail fields.
        format!(
            "{id} {} 5 100 4 90 -1 4 200 -1 1 3 1 7 1 -1 \
             -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1",
            id * 60
        )
    }

    #[test]
    fn parses_minimal_file() {
        let text = format!(
            "# Site: TestGrid\n# MaxNodes: 256\n{}\n{}\n",
            good_line(1),
            good_line(2)
        );
        let doc = parse_gwf(&text).unwrap();
        assert_eq!(doc.header["Site"], "TestGrid");
        assert_eq!(doc.jobs.len(), 2);
        assert_eq!(doc.jobs[0].id, 1);
        assert_eq!(doc.jobs[0].run_time, 100.0);
        assert_eq!(doc.jobs[0].used_procs, 4);
        assert_eq!(doc.jobs[0].status, JobStatus::Completed);
        assert_eq!(doc.jobs[1].submit_time, 120.0);
        // Grid lines have no SWF fields 17/18.
        assert_eq!(doc.jobs[0].preceding_job, -1);
        assert_eq!(doc.jobs[0].think_time, -1.0);
    }

    #[test]
    fn swf_field_count_is_rejected() {
        // An 18-field SWF line is NOT a GWF line.
        let err = parse_gwf("1 0 5 100 4 90 -1 4 200 -1 1 3 1 7 1 -1 -1 -1\n").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::FieldCount);
        assert!(err.message.contains("29 fields"));
    }

    #[test]
    fn typed_errors_mirror_swf_taxonomy() {
        let bad_id = good_line(1).replacen('1', "-1", 1);
        assert_eq!(
            parse_gwf(&bad_id).unwrap_err().kind,
            ParseErrorKind::NegativeId
        );
        let not_num = good_line(1).replace("100", "abc");
        assert_eq!(
            parse_gwf(&not_num).unwrap_err().kind,
            ParseErrorKind::NotNumeric
        );
        let non_finite = good_line(1).replace("100", "inf");
        assert_eq!(
            parse_gwf(&non_finite).unwrap_err().kind,
            ParseErrorKind::NonFinite
        );
    }

    #[test]
    fn lenient_parse_skips_and_counts() {
        wl_obs::set_enabled(true);
        let snap = wl_obs::registry().snapshot();
        let before = (
            snap.counter("gwf.skip.field_count"),
            snap.counter("gwf.jobs_parsed"),
        );
        let text = format!("{}\nshort line\n{}\n", good_line(1), good_line(2));
        let (doc, report) = parse_gwf_lenient(&text);
        assert_eq!(doc.jobs.len(), 2);
        assert_eq!(report.format, TraceFormat::Gwf);
        assert_eq!(report.skipped, vec![(2, ParseErrorKind::FieldCount)]);
        let snap = wl_obs::registry().snapshot();
        assert!(snap.counter("gwf.skip.field_count") > before.0);
        assert!(snap.counter("gwf.jobs_parsed") >= before.1 + 2);
    }

    #[test]
    fn header_machine_metadata_round_trips() {
        let w = NormalizedTrace::new(
            "G",
            TraceMeta::new(
                512,
                SchedulerFlexibility::Gang,
                AllocationFlexibility::PowerOfTwoPartitions,
            ),
            vec![],
        );
        let text = write_gwf(&w);
        let doc = parse_gwf(&text).unwrap();
        let w2 = doc.into_trace("G", machine());
        assert_eq!(w2.machine.processors, 512);
        assert_eq!(w2.machine.scheduler, SchedulerFlexibility::Gang);
        assert_eq!(
            w2.machine.allocation,
            AllocationFlexibility::PowerOfTwoPartitions
        );
    }

    #[test]
    fn round_trip_preserves_trace() {
        let mut j1 = JobRecord::new(1, 0.0);
        j1.run_time = 123.5;
        j1.used_procs = 8;
        j1.user_id = 3;
        j1.status = JobStatus::Completed;
        let mut j2 = JobRecord::new(2, 17.25);
        j2.run_time = 4.0;
        j2.used_procs = 1;
        j2.queue = 1;
        let w = NormalizedTrace::new("RT", machine(), vec![j1, j2]);
        let text = write_gwf(&w);
        let w2 = parse_gwf(&text).unwrap().into_trace("RT", machine());
        assert_eq!(w, w2);
        assert_eq!(w.canonical_digest(), w2.canonical_digest());
    }

    #[test]
    fn same_jobs_in_swf_and_gwf_digest_identically() {
        // The canonical digest is over the record stream, not the file
        // bytes: the same jobs round-tripped through either format agree.
        let mut j = JobRecord::new(1, 10.0);
        j.run_time = 50.0;
        j.used_procs = 4;
        let w = NormalizedTrace::new("x", machine(), vec![j]);
        let via_swf = crate::swf::parse_swf(&crate::swf::write_swf(&w))
            .unwrap()
            .into_trace("x", machine());
        let via_gwf = parse_gwf(&write_gwf(&w)).unwrap().into_trace("x", machine());
        assert_eq!(via_swf.canonical_digest(), via_gwf.canonical_digest());
    }

    #[test]
    fn source_read_matches_manual_parse() {
        let text = format!("# MaxNodes: 64\n{}\n", good_line(1));
        let via_source = GwfSource.read("g", &text, machine()).unwrap();
        let manual = parse_gwf(&text).unwrap().into_trace("g", machine());
        assert_eq!(via_source, manual);
        assert_eq!(GwfSource.format(), TraceFormat::Gwf);
    }

    #[test]
    fn truncated_file_mid_line_never_panics() {
        let text = format!("# MaxNodes: 8\n{}\n", good_line(1));
        for cut in 0..=text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let prefix = &text[..cut];
            let _ = parse_gwf(prefix);
            let (_, report) = parse_gwf_lenient(prefix);
            assert!(report.jobs <= 1);
        }
    }

    mod fuzz {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Neither parser panics on arbitrary text, and the lenient one
            /// accounts for every line.
            #[test]
            fn parsers_never_panic_on_arbitrary_text(text in "\\PC*") {
                let _ = parse_gwf(&text);
                let (doc, report) = parse_gwf_lenient(&text);
                prop_assert_eq!(doc.jobs.len(), report.jobs);
                prop_assert_eq!(
                    report.jobs + report.skipped.len() + report.header_lines
                        + report.ignored_lines,
                    report.lines
                );
            }

            /// Corrupting one field of a valid GWF line yields a typed error
            /// or a clean parse — never a panic.
            #[test]
            fn corrupted_field_gives_typed_error(
                field in 0usize..GWF_FIELDS,
                garbage in "\\PC*",
            ) {
                let base = super::good_line(1);
                let mut fields: Vec<String> =
                    base.split_whitespace().map(str::to_string).collect();
                fields[field] = garbage;
                let line = fields.join(" ");
                match parse_gwf(&line) {
                    Ok(doc) => prop_assert!(doc.jobs.len() <= 2),
                    Err(e) => {
                        prop_assert!(e.line >= 1);
                        let _ = e.kind.label();
                    }
                }
            }

            /// Lenient parsing keeps exactly the valid jobs.
            #[test]
            fn lenient_keeps_exactly_the_valid_jobs(
                n_good in 0usize..6,
                n_bad in 0usize..6,
            ) {
                let mut text = String::new();
                for i in 0..n_good.max(n_bad) {
                    if i < n_good {
                        text.push_str(&super::good_line(i as u64 + 1));
                        text.push('\n');
                    }
                    if i < n_bad {
                        text.push_str("truncated line\n");
                    }
                }
                let (doc, report) = parse_gwf_lenient(&text);
                prop_assert_eq!(doc.jobs.len(), n_good);
                prop_assert_eq!(report.skipped.len(), n_bad);
                prop_assert!(report
                    .skipped
                    .iter()
                    .all(|(_, k)| *k == ParseErrorKind::FieldCount));
            }
        }
    }
}
