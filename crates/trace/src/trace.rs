//! Normalized trace container and the machine metadata the paper ranks.
//!
//! A [`NormalizedTrace`] is what every [`crate::TraceSource`] adapter
//! produces: a named, submit-time-ordered stream of [`JobRecord`]s plus
//! [`TraceMeta`] describing the system that produced them. Downstream code
//! (derived variables, Co-plot, self-similarity) consumes only this shape,
//! never a concrete file format.

use crate::record::JobRecord;

/// Scheduler flexibility rank (paper section 3, variable 2): the three
/// scheduler families in the sample, ranked by increasing flexibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchedulerFlexibility {
    /// NQS-style batch queueing (rank 1).
    BatchQueue = 1,
    /// EASY backfilling (rank 2).
    Backfilling = 2,
    /// Gang scheduling (rank 3).
    Gang = 3,
}

impl SchedulerFlexibility {
    /// The paper's 1..=3 rank.
    pub fn rank(&self) -> u8 {
        *self as u8
    }
}

/// Processor-allocation flexibility rank (paper section 3, variable 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AllocationFlexibility {
    /// Static power-of-two partitions only (rank 1).
    PowerOfTwoPartitions = 1,
    /// Limited allocation, e.g. mesh shapes (rank 2).
    Limited = 2,
    /// Any subset of nodes (rank 3).
    Unlimited = 3,
}

impl AllocationFlexibility {
    /// The paper's 1..=3 rank.
    pub fn rank(&self) -> u8 {
        *self as u8
    }
}

/// Static description of the system behind a trace. For supercomputer and
/// grid traces this is the machine; for web traces the "processors" are the
/// server's peak concurrent sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceMeta {
    /// Number of processors in the system.
    pub processors: u64,
    /// Scheduler flexibility rank.
    pub scheduler: SchedulerFlexibility,
    /// Processor-allocation flexibility rank.
    pub allocation: AllocationFlexibility,
}

impl TraceMeta {
    /// Convenience constructor.
    pub fn new(
        processors: u64,
        scheduler: SchedulerFlexibility,
        allocation: AllocationFlexibility,
    ) -> Self {
        assert!(processors > 0, "machine must have processors");
        TraceMeta {
            processors,
            scheduler,
            allocation,
        }
    }
}

/// A named collection of job records plus the system they ran on.
#[derive(Debug, Clone)]
pub struct NormalizedTrace {
    /// Short display name ("CTC", "LANLi", "S3", ...).
    pub name: String,
    /// Machine metadata.
    pub machine: TraceMeta,
    /// Records, in ascending submit-time order (enforced by
    /// [`NormalizedTrace::new`]).
    jobs: Vec<JobRecord>,
    /// Adjacent submit-time inversions counted in the order the records
    /// were handed to [`NormalizedTrace::new`], before sorting. Zero means
    /// the source stream was already sorted. Not part of equality: two
    /// traces with the same sorted records are the same trace.
    presort_inversions: usize,
}

impl PartialEq for NormalizedTrace {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.machine == other.machine && self.jobs == other.jobs
    }
}

impl NormalizedTrace {
    /// Build a trace, sorting records by submit time.
    pub fn new(name: impl Into<String>, machine: TraceMeta, mut jobs: Vec<JobRecord>) -> Self {
        // Streaming consumers need to know whether the source stream was
        // already time-ordered (the `reject` out-of-order policy); count
        // adjacent descending pairs before the sort erases the evidence.
        let presort_inversions = jobs
            .windows(2)
            .filter(|w| w[1].submit_time.total_cmp(&w[0].submit_time).is_lt())
            .count();
        // total_cmp: NaN submit times sort last instead of panicking.
        jobs.sort_by(|a, b| a.submit_time.total_cmp(&b.submit_time));
        NormalizedTrace {
            name: name.into(),
            machine,
            jobs,
            presort_inversions,
        }
    }

    /// The records, ascending by submit time.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Adjacent submit-time inversions seen in the record order handed to
    /// [`NormalizedTrace::new`], before sorting. Zero iff the source stream
    /// was already ascending by submit time (derived sub-traces built from
    /// already-sorted records report zero).
    pub fn presort_inversions(&self) -> usize {
        self.presort_inversions
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Log duration: last job end (or submit, where runtime is unknown)
    /// minus first submit. Zero for empty/single-instant logs.
    pub fn duration(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        // Non-empty: the early return above handles the empty case.
        let start = self.jobs.first().unwrap().submit_time;
        let end = self
            .jobs
            .iter()
            .map(|j| j.end_time().unwrap_or(j.submit_time))
            .fold(f64::NEG_INFINITY, f64::max);
        (end - start).max(0.0)
    }

    /// A sub-trace containing only the records satisfying `pred`, renamed.
    pub fn filtered(
        &self,
        name: impl Into<String>,
        pred: impl Fn(&JobRecord) -> bool,
    ) -> NormalizedTrace {
        NormalizedTrace {
            name: name.into(),
            machine: self.machine,
            jobs: self.jobs.iter().filter(|j| pred(j)).cloned().collect(),
            presort_inversions: 0,
        }
    }

    /// Interactive jobs only (queue convention; see [`crate::record`]).
    /// Named `<name>i` as in the paper's tables.
    pub fn interactive_only(&self) -> NormalizedTrace {
        self.filtered(format!("{}i", self.name), |j| j.is_interactive())
    }

    /// Batch jobs only. Named `<name>b` as in the paper's tables.
    pub fn batch_only(&self) -> NormalizedTrace {
        self.filtered(format!("{}b", self.name), |j| j.is_batch())
    }

    /// Split into `n` equal-duration consecutive periods by submit time
    /// (the paper's six-month splits of LANL and SDSC, section 6). Period
    /// `k` is named `<prefix><k+1>`. Periods partition the jobs: every job
    /// lands in exactly one.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn split_periods(&self, n: usize, prefix: &str) -> Vec<NormalizedTrace> {
        assert!(n > 0, "need at least one period");
        if self.jobs.is_empty() {
            return (0..n)
                .map(|k| NormalizedTrace {
                    name: format!("{prefix}{}", k + 1),
                    machine: self.machine,
                    jobs: Vec::new(),
                    presort_inversions: 0,
                })
                .collect();
        }
        // Non-empty: the early return above handles the empty case.
        let t0 = self.jobs.first().unwrap().submit_time;
        let t1 = self.jobs.last().unwrap().submit_time;
        let span = (t1 - t0).max(f64::MIN_POSITIVE);
        let mut buckets: Vec<Vec<JobRecord>> = vec![Vec::new(); n];
        for j in &self.jobs {
            let k = (((j.submit_time - t0) / span) * n as f64) as usize;
            buckets[k.min(n - 1)].push(j.clone());
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(k, jobs)| NormalizedTrace {
                name: format!("{prefix}{}", k + 1),
                machine: self.machine,
                jobs,
                presort_inversions: 0,
            })
            .collect()
    }

    /// Number of distinct known users.
    pub fn distinct_users(&self) -> usize {
        let mut ids: Vec<u64> = self.jobs.iter().filter_map(|j| j.user_id_opt()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of distinct known executables.
    pub fn distinct_executables(&self) -> usize {
        let mut ids: Vec<u64> = self
            .jobs
            .iter()
            .filter_map(|j| j.executable_id_opt())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// FNV-1a digest over the canonical record stream: name, machine facts,
    /// then every field of every record in fixed order with f64s encoded as
    /// IEEE-754 bit patterns. Two traces digest equally iff they normalize
    /// to the same name, metadata, and record stream — regardless of which
    /// on-disk format (SWF, GWF, web log) they came from. Serve's result
    /// cache keys on this, which is what makes the cache format-independent.
    pub fn canonical_digest(&self) -> u64 {
        let mut buf: Vec<u8> = Vec::with_capacity(64 + self.jobs.len() * 18 * 8);
        buf.extend_from_slice(self.name.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&self.machine.processors.to_le_bytes());
        buf.push(self.machine.scheduler.rank());
        buf.push(self.machine.allocation.rank());
        buf.extend_from_slice(&(self.jobs.len() as u64).to_le_bytes());
        for j in &self.jobs {
            buf.extend_from_slice(&j.id.to_le_bytes());
            for f in [
                j.submit_time,
                j.wait_time,
                j.run_time,
                j.avg_cpu_time,
                j.used_memory,
                j.requested_time,
                j.requested_memory,
                j.think_time,
            ] {
                buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            for i in [
                j.used_procs,
                j.requested_procs,
                j.status.code(),
                j.user_id,
                j.group_id,
                j.executable_id,
                j.queue,
                j.partition,
                j.preceding_job,
            ] {
                buf.extend_from_slice(&i.to_le_bytes());
            }
        }
        coplot::api::fnv1a(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{QUEUE_BATCH, QUEUE_INTERACTIVE};

    fn machine() -> TraceMeta {
        TraceMeta::new(
            128,
            SchedulerFlexibility::Backfilling,
            AllocationFlexibility::Unlimited,
        )
    }

    fn job(id: u64, submit: f64, run: f64, procs: i64, queue: i64) -> JobRecord {
        let mut j = JobRecord::new(id, submit);
        j.run_time = run;
        j.used_procs = procs;
        j.queue = queue;
        j.wait_time = 0.0;
        j
    }

    #[test]
    fn jobs_sorted_on_construction() {
        let w = NormalizedTrace::new(
            "t",
            machine(),
            vec![job(2, 50.0, 1.0, 1, -1), job(1, 10.0, 1.0, 1, -1)],
        );
        assert_eq!(w.jobs()[0].id, 1);
        assert_eq!(w.jobs()[1].id, 2);
    }

    #[test]
    fn presort_inversions_counted_before_sorting() {
        let sorted = NormalizedTrace::new(
            "t",
            machine(),
            vec![job(1, 10.0, 1.0, 1, -1), job(2, 50.0, 1.0, 1, -1)],
        );
        assert_eq!(sorted.presort_inversions(), 0);
        let unsorted = NormalizedTrace::new(
            "t",
            machine(),
            vec![
                job(3, 90.0, 1.0, 1, -1),
                job(1, 10.0, 1.0, 1, -1),
                job(2, 50.0, 1.0, 1, -1),
                job(4, 20.0, 1.0, 1, -1),
            ],
        );
        assert_eq!(unsorted.presort_inversions(), 2);
        // Inversions describe ingestion order, never equality: the same
        // sorted records are the same trace.
        assert_eq!(sorted, sorted.clone());
        // Derived sub-traces are built from already-sorted records.
        assert_eq!(unsorted.filtered("f", |_| true).presort_inversions(), 0);
    }

    #[test]
    fn duration_spans_submit_to_last_end() {
        let w = NormalizedTrace::new(
            "t",
            machine(),
            vec![job(1, 0.0, 100.0, 1, -1), job(2, 50.0, 10.0, 1, -1)],
        );
        assert_eq!(w.duration(), 100.0);
    }

    #[test]
    fn empty_duration_zero() {
        let w = NormalizedTrace::new("t", machine(), vec![]);
        assert_eq!(w.duration(), 0.0);
        assert!(w.is_empty());
    }

    #[test]
    fn interactive_batch_split() {
        let w = NormalizedTrace::new(
            "LANL",
            machine(),
            vec![
                job(1, 0.0, 1.0, 1, QUEUE_INTERACTIVE),
                job(2, 1.0, 1.0, 1, QUEUE_BATCH),
                job(3, 2.0, 1.0, 1, QUEUE_BATCH),
            ],
        );
        let i = w.interactive_only();
        let b = w.batch_only();
        assert_eq!(i.name, "LANLi");
        assert_eq!(b.name, "LANLb");
        assert_eq!(i.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(i.len() + b.len(), w.len());
    }

    #[test]
    fn period_split_partitions_jobs() {
        let jobs: Vec<JobRecord> = (0..100)
            .map(|i| job(i as u64, i as f64, 1.0, 1, -1))
            .collect();
        let w = NormalizedTrace::new("LANL", machine(), jobs);
        let parts = w.split_periods(4, "L");
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 100);
        assert_eq!(parts[0].name, "L1");
        assert_eq!(parts[3].name, "L4");
        // Periods are time-ordered and disjoint.
        assert!(parts[0].jobs().iter().all(|j| j.submit_time < 25.0));
        assert!(parts[3].jobs().iter().all(|j| j.submit_time >= 74.0));
    }

    #[test]
    fn split_singleton_time_goes_to_last_bucket_safely() {
        let w = NormalizedTrace::new("x", machine(), vec![job(1, 5.0, 1.0, 1, -1)]);
        let parts = w.split_periods(3, "p");
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 1);
    }

    #[test]
    fn distinct_counters() {
        let mut j1 = job(1, 0.0, 1.0, 1, -1);
        j1.user_id = 10;
        j1.executable_id = 5;
        let mut j2 = job(2, 1.0, 1.0, 1, -1);
        j2.user_id = 10;
        j2.executable_id = 6;
        let mut j3 = job(3, 2.0, 1.0, 1, -1);
        j3.user_id = 11; // executable unknown
        let w = NormalizedTrace::new("t", machine(), vec![j1, j2, j3]);
        assert_eq!(w.distinct_users(), 2);
        assert_eq!(w.distinct_executables(), 2);
    }

    #[test]
    #[should_panic(expected = "machine must have processors")]
    fn zero_processor_machine_rejected() {
        TraceMeta::new(0, SchedulerFlexibility::Gang, AllocationFlexibility::Limited);
    }

    #[test]
    fn digest_tracks_content() {
        let w1 = NormalizedTrace::new("t", machine(), vec![job(1, 0.0, 1.0, 1, -1)]);
        let w2 = NormalizedTrace::new("t", machine(), vec![job(1, 0.0, 1.0, 1, -1)]);
        let w3 = NormalizedTrace::new("t", machine(), vec![job(1, 0.0, 2.0, 1, -1)]);
        assert_eq!(w1.canonical_digest(), w2.canonical_digest());
        assert_ne!(w1.canonical_digest(), w3.canonical_digest());
    }

    #[test]
    fn digest_tracks_name_and_machine() {
        let jobs = vec![job(1, 0.0, 1.0, 1, -1)];
        let base = NormalizedTrace::new("t", machine(), jobs.clone());
        let renamed = NormalizedTrace::new("u", machine(), jobs.clone());
        let resized = NormalizedTrace::new(
            "t",
            TraceMeta::new(
                64,
                SchedulerFlexibility::Backfilling,
                AllocationFlexibility::Unlimited,
            ),
            jobs,
        );
        assert_ne!(base.canonical_digest(), renamed.canonical_digest());
        assert_ne!(base.canonical_digest(), resized.canonical_digest());
    }
}
