//! The canonical normalized job record every trace adapter yields.
//!
//! Field meanings follow the standard workload format: 18 numeric fields
//! with `-1` denoting "unknown / not collected". Non-SWF adapters (GWF,
//! web access logs, the synthetic families) normalize into exactly this
//! shape, so everything downstream — the derived-variable engine, the
//! self-similarity kernels, the Co-plot pipeline — is format-agnostic.
//! This module stores the raw sentinel representation (so parse/write is a
//! faithful round trip) and layers `Option`-returning accessors on top for
//! analysis code.

/// Sentinel for a missing numeric field, as in SWF files.
pub const MISSING: f64 = -1.0;

/// Job completion status (SWF field 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// 0 — job failed.
    Failed,
    /// 1 — job completed normally.
    Completed,
    /// 2 — partial execution, to be continued.
    PartialToBeContinued,
    /// 3 — final partial execution.
    PartialLast,
    /// 4 — job was cancelled.
    Cancelled,
    /// -1 — status unknown.
    Unknown,
}

impl JobStatus {
    /// Decode the SWF integer code (any unknown code maps to `Unknown`).
    pub fn from_code(code: i64) -> JobStatus {
        match code {
            0 => JobStatus::Failed,
            1 => JobStatus::Completed,
            2 => JobStatus::PartialToBeContinued,
            3 => JobStatus::PartialLast,
            4 => JobStatus::Cancelled,
            _ => JobStatus::Unknown,
        }
    }

    /// Encode back to the SWF integer code.
    pub fn code(&self) -> i64 {
        match self {
            JobStatus::Failed => 0,
            JobStatus::Completed => 1,
            JobStatus::PartialToBeContinued => 2,
            JobStatus::PartialLast => 3,
            JobStatus::Cancelled => 4,
            JobStatus::Unknown => -1,
        }
    }
}

/// A single normalized job record (the standard-workload-format field set).
///
/// Times are in seconds. Identifier fields use `-1` for "unknown"; the
/// `*_opt` accessors translate sentinels into `Option`s.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// 1. Job number, counting from 1.
    pub id: u64,
    /// 2. Submit time in seconds from the start of the log.
    pub submit_time: f64,
    /// 3. Wait time in the queue, seconds (`-1` unknown).
    pub wait_time: f64,
    /// 4. Run time, seconds (`-1` unknown).
    pub run_time: f64,
    /// 5. Number of allocated processors (`-1` unknown).
    pub used_procs: i64,
    /// 6. Average CPU time used per processor, seconds (`-1` unknown).
    pub avg_cpu_time: f64,
    /// 7. Used memory per node, KB (`-1` unknown).
    pub used_memory: f64,
    /// 8. Requested number of processors (`-1` unknown).
    pub requested_procs: i64,
    /// 9. Requested runtime limit, seconds (`-1` unknown).
    pub requested_time: f64,
    /// 10. Requested memory per node, KB (`-1` unknown).
    pub requested_memory: f64,
    /// 11. Completion status.
    pub status: JobStatus,
    /// 12. User id (`-1` unknown).
    pub user_id: i64,
    /// 13. Group id (`-1` unknown).
    pub group_id: i64,
    /// 14. Executable (application) id (`-1` unknown).
    pub executable_id: i64,
    /// 15. Queue number (`-1` unknown). This workspace's convention, used
    ///     by the log synthesizers: queue 1 = interactive, queue 2 = batch.
    pub queue: i64,
    /// 16. Partition number (`-1` unknown).
    pub partition: i64,
    /// 17. Preceding job id (`-1` none).
    pub preceding_job: i64,
    /// 18. Think time from preceding job, seconds (`-1` none).
    pub think_time: f64,
}

/// Queue code for interactive jobs (workspace convention).
pub const QUEUE_INTERACTIVE: i64 = 1;
/// Queue code for batch jobs (workspace convention).
pub const QUEUE_BATCH: i64 = 2;

impl JobRecord {
    /// A record with every optional field missing — the base for builders.
    pub fn new(id: u64, submit_time: f64) -> JobRecord {
        JobRecord {
            id,
            submit_time,
            wait_time: MISSING,
            run_time: MISSING,
            used_procs: -1,
            avg_cpu_time: MISSING,
            used_memory: MISSING,
            requested_procs: -1,
            requested_time: MISSING,
            requested_memory: MISSING,
            status: JobStatus::Unknown,
            user_id: -1,
            group_id: -1,
            executable_id: -1,
            queue: -1,
            partition: -1,
            preceding_job: -1,
            think_time: MISSING,
        }
    }

    /// Run time if known.
    pub fn run_time_opt(&self) -> Option<f64> {
        if self.run_time < 0.0 {
            None
        } else {
            Some(self.run_time)
        }
    }

    /// Allocated processors if known.
    pub fn used_procs_opt(&self) -> Option<u64> {
        if self.used_procs < 0 {
            None
        } else {
            Some(self.used_procs as u64)
        }
    }

    /// Average per-processor CPU time if known.
    pub fn avg_cpu_time_opt(&self) -> Option<f64> {
        if self.avg_cpu_time < 0.0 {
            None
        } else {
            Some(self.avg_cpu_time)
        }
    }

    /// User id if known.
    pub fn user_id_opt(&self) -> Option<u64> {
        if self.user_id < 0 {
            None
        } else {
            Some(self.user_id as u64)
        }
    }

    /// Executable id if known.
    pub fn executable_id_opt(&self) -> Option<u64> {
        if self.executable_id < 0 {
            None
        } else {
            Some(self.executable_id as u64)
        }
    }

    /// Total CPU work across all processors: CPU time per processor times
    /// processors when CPU time is known, otherwise runtime times
    /// processors (the paper's NASA approximation), otherwise `None`.
    pub fn total_cpu_work(&self) -> Option<f64> {
        let procs = self.used_procs_opt()? as f64;
        if let Some(cpu) = self.avg_cpu_time_opt() {
            Some(cpu * procs)
        } else {
            self.run_time_opt().map(|rt| rt * procs)
        }
    }

    /// Node-seconds actually occupied: runtime times processors.
    pub fn node_seconds(&self) -> Option<f64> {
        Some(self.run_time_opt()? * self.used_procs_opt()? as f64)
    }

    /// The moment the job started running (submit + wait), if wait is known;
    /// otherwise the submit time (the paper's fallback for logs without
    /// submit records).
    pub fn start_time(&self) -> f64 {
        if self.wait_time >= 0.0 {
            self.submit_time + self.wait_time
        } else {
            self.submit_time
        }
    }

    /// The moment the job finished (start + runtime), when runtime is known.
    pub fn end_time(&self) -> Option<f64> {
        self.run_time_opt().map(|rt| self.start_time() + rt)
    }

    /// True when this job is marked interactive under the workspace's queue
    /// convention.
    pub fn is_interactive(&self) -> bool {
        self.queue == QUEUE_INTERACTIVE
    }

    /// True when this job is marked batch under the workspace's queue
    /// convention.
    pub fn is_batch(&self) -> bool {
        self.queue == QUEUE_BATCH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_round_trip() {
        for code in [-1, 0, 1, 2, 3, 4] {
            assert_eq!(JobStatus::from_code(code).code(), code);
        }
        assert_eq!(JobStatus::from_code(99), JobStatus::Unknown);
    }

    #[test]
    fn fresh_record_is_all_missing() {
        let j = JobRecord::new(1, 100.0);
        assert_eq!(j.run_time_opt(), None);
        assert_eq!(j.used_procs_opt(), None);
        assert_eq!(j.total_cpu_work(), None);
        assert_eq!(j.user_id_opt(), None);
        assert_eq!(j.start_time(), 100.0);
        assert_eq!(j.end_time(), None);
    }

    #[test]
    fn total_cpu_work_prefers_cpu_time() {
        let mut j = JobRecord::new(1, 0.0);
        j.used_procs = 4;
        j.run_time = 100.0;
        j.avg_cpu_time = 80.0;
        assert_eq!(j.total_cpu_work(), Some(320.0));
        // Without CPU time, falls back to runtime * procs.
        j.avg_cpu_time = MISSING;
        assert_eq!(j.total_cpu_work(), Some(400.0));
    }

    #[test]
    fn node_seconds() {
        let mut j = JobRecord::new(1, 0.0);
        j.used_procs = 8;
        j.run_time = 50.0;
        assert_eq!(j.node_seconds(), Some(400.0));
        j.run_time = MISSING;
        assert_eq!(j.node_seconds(), None);
    }

    #[test]
    fn start_and_end_times() {
        let mut j = JobRecord::new(1, 100.0);
        j.wait_time = 20.0;
        j.run_time = 30.0;
        assert_eq!(j.start_time(), 120.0);
        assert_eq!(j.end_time(), Some(150.0));
    }

    #[test]
    fn queue_classes() {
        let mut j = JobRecord::new(1, 0.0);
        assert!(!j.is_interactive() && !j.is_batch());
        j.queue = QUEUE_INTERACTIVE;
        assert!(j.is_interactive());
        j.queue = QUEUE_BATCH;
        assert!(j.is_batch());
    }
}
