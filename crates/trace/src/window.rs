//! Incremental per-window Table-1 maintenance for streaming consumers.
//!
//! The batch path ([`TraceStats::compute`]) makes several passes over a
//! whole trace. A streaming consumer instead sees job records one at a time
//! and seals fixed-size windows as they fill; recomputing every variable
//! from scratch per window would redo work proportional to the window each
//! time *and* force the caller to materialize a [`NormalizedTrace`] per
//! window. [`WindowStatsBuilder`] maintains every Table-1 ingredient as
//! records arrive — running sums for the loads, distinct-id sets for the
//! population normalizations, value buffers for the order statistics, the
//! last submit time for inter-arrivals — so sealing a window is a single
//! pass over nothing but the already-reduced state.
//!
//! **Bit-exactness contract:** for records pushed in ascending submit-time
//! order, [`WindowStatsBuilder::stats`] is bit-identical to
//! [`TraceStats::compute`] on a [`NormalizedTrace`] holding the same
//! records — every floating-point reduction here runs in the same order the
//! batch code's passes do. `incremental_matches_batch_bit_exact` pins this.

use std::collections::BTreeSet;

use wl_stats::order::Percentiles;

use crate::record::{JobRecord, JobStatus};
use crate::stats::{TraceStats, INTERVAL_WIDTH, NORMALIZED_MACHINE};
use crate::trace::TraceMeta;

/// Streaming accumulator for one window's [`TraceStats`].
///
/// Push records in ascending submit-time order (the order every
/// [`crate::NormalizedTrace`] already guarantees), then call
/// [`stats`](WindowStatsBuilder::stats) to seal the window.
#[derive(Debug, Clone)]
pub struct WindowStatsBuilder {
    name: String,
    machine: TraceMeta,
    count: usize,
    first_submit: f64,
    max_end: f64,
    node_seconds_sum: f64,
    node_seconds_any: bool,
    cpu_seconds_sum: f64,
    cpu_seconds_any: bool,
    users: BTreeSet<u64>,
    executables: BTreeSet<u64>,
    known_status: usize,
    completed: usize,
    runtimes: Vec<f64>,
    procs: Vec<f64>,
    norm_procs: Vec<f64>,
    work: Vec<f64>,
    interarrivals: Vec<f64>,
    last_submit: Option<f64>,
}

impl WindowStatsBuilder {
    /// An empty window named `name` on the given machine.
    pub fn new(name: impl Into<String>, machine: TraceMeta) -> Self {
        WindowStatsBuilder {
            name: name.into(),
            machine,
            count: 0,
            first_submit: 0.0,
            max_end: f64::NEG_INFINITY,
            node_seconds_sum: 0.0,
            node_seconds_any: false,
            cpu_seconds_sum: 0.0,
            cpu_seconds_any: false,
            users: BTreeSet::new(),
            executables: BTreeSet::new(),
            known_status: 0,
            completed: 0,
            runtimes: Vec::new(),
            procs: Vec::new(),
            norm_procs: Vec::new(),
            work: Vec::new(),
            interarrivals: Vec::new(),
            last_submit: None,
        }
    }

    /// Fold one record into the window state.
    pub fn push(&mut self, j: &JobRecord) {
        if self.count == 0 {
            self.first_submit = j.submit_time;
        }
        self.count += 1;
        self.max_end = self.max_end.max(j.end_time().unwrap_or(j.submit_time));

        if let Some(ns) = j.node_seconds() {
            self.node_seconds_sum += ns;
            self.node_seconds_any = true;
        }
        if let (Some(cpu), Some(p)) = (j.avg_cpu_time_opt(), j.used_procs_opt()) {
            self.cpu_seconds_sum += cpu * p as f64;
            self.cpu_seconds_any = true;
        }
        if let Some(u) = j.user_id_opt() {
            self.users.insert(u);
        }
        if let Some(e) = j.executable_id_opt() {
            self.executables.insert(e);
        }
        if j.status != JobStatus::Unknown {
            self.known_status += 1;
            if j.status == JobStatus::Completed {
                self.completed += 1;
            }
        }
        if let Some(rt) = j.run_time_opt() {
            self.runtimes.push(rt);
        }
        if let Some(p) = j.used_procs_opt() {
            let p = p as f64;
            self.procs.push(p);
            self.norm_procs
                .push(p / self.machine.processors as f64 * NORMALIZED_MACHINE);
        }
        if let Some(w) = j.total_cpu_work() {
            self.work.push(w);
        }
        if let Some(prev) = self.last_submit {
            self.interarrivals.push(j.submit_time - prev);
        }
        self.last_submit = Some(j.submit_time);
    }

    /// Records folded so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no record has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The window's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Seal the window: produce the same [`TraceStats`] the batch pass
    /// would, from the maintained state alone.
    pub fn stats(&self) -> TraceStats {
        let njobs = self.count;
        let duration = if njobs == 0 {
            0.0
        } else {
            (self.max_end - self.first_submit).max(0.0)
        };
        let capacity = self.machine.processors as f64 * duration;

        let runtime_load = if capacity > 0.0 && self.node_seconds_any {
            Some(self.node_seconds_sum / capacity)
        } else {
            None
        };
        let cpu_load = if capacity > 0.0 && self.cpu_seconds_any {
            Some(self.cpu_seconds_sum / capacity)
        } else {
            None
        };

        let norm = |count: usize| {
            if njobs > 0 && count > 0 {
                Some(count as f64 / njobs as f64)
            } else {
                None
            }
        };
        let norm_executables = norm(self.executables.len());
        let norm_users = norm(self.users.len());

        let completed_fraction = if self.known_status == 0 {
            None
        } else {
            Some(self.completed as f64 / self.known_status as f64)
        };

        let med_int = |xs: &[f64]| -> (Option<f64>, Option<f64>) {
            if xs.is_empty() {
                (None, None)
            } else {
                let p = Percentiles::new(xs);
                (Some(p.median()), Some(p.interval(INTERVAL_WIDTH)))
            }
        };
        let (runtime_median, runtime_interval) = med_int(&self.runtimes);
        let (procs_median, procs_interval) = med_int(&self.procs);
        let (norm_procs_median, norm_procs_interval) = med_int(&self.norm_procs);
        let (cpu_work_median, cpu_work_interval) = med_int(&self.work);
        let (interarrival_median, interarrival_interval) = med_int(&self.interarrivals);

        TraceStats {
            name: self.name.clone(),
            machine_processors: self.machine.processors as f64,
            scheduler_flexibility: self.machine.scheduler.rank() as f64,
            allocation_flexibility: self.machine.allocation.rank() as f64,
            runtime_load,
            cpu_load,
            norm_executables,
            norm_users,
            completed_fraction,
            runtime_median,
            runtime_interval,
            procs_median,
            procs_interval,
            norm_procs_median,
            norm_procs_interval,
            cpu_work_median,
            cpu_work_interval,
            interarrival_median,
            interarrival_interval,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AllocationFlexibility, NormalizedTrace, SchedulerFlexibility};

    fn machine(procs: u64) -> TraceMeta {
        TraceMeta::new(
            procs,
            SchedulerFlexibility::Backfilling,
            AllocationFlexibility::Unlimited,
        )
    }

    /// A varied record stream: some fields missing, mixed statuses,
    /// irregular arrivals — everything Table 1 touches.
    fn varied_jobs(n: usize) -> Vec<JobRecord> {
        (0..n)
            .map(|i| {
                let mut j = JobRecord::new(i as u64 + 1, (i * i % 97) as f64 + i as f64 * 3.0);
                if i % 7 != 0 {
                    j.run_time = 10.0 + (i % 13) as f64 * 7.5;
                }
                if i % 5 != 0 {
                    j.used_procs = 1 + (i % 16) as i64;
                }
                if i % 3 == 0 {
                    j.avg_cpu_time = 4.0 + (i % 11) as f64;
                }
                j.wait_time = (i % 4) as f64;
                j.status = JobStatus::from_code((i % 6) as i64 - 1);
                if i % 2 == 0 {
                    j.user_id = (i % 9) as i64;
                }
                if i % 4 != 3 {
                    j.executable_id = (i % 5) as i64;
                }
                j
            })
            .collect()
    }

    #[test]
    fn incremental_matches_batch_bit_exact() {
        let jobs = varied_jobs(200);
        let m = machine(64);
        // Tumbling windows of 32 records over the sorted stream.
        let sorted = NormalizedTrace::new("all", m, jobs);
        for (k, chunk) in sorted.jobs().chunks(32).enumerate() {
            let name = format!("w{}", k + 1);
            let mut b = WindowStatsBuilder::new(&name, m);
            for j in chunk {
                b.push(j);
            }
            let batch = TraceStats::compute(&NormalizedTrace::new(&name, m, chunk.to_vec()));
            assert_eq!(b.stats(), batch, "window {name}");
        }
    }

    #[test]
    fn empty_window_matches_batch() {
        let m = machine(16);
        let b = WindowStatsBuilder::new("e", m);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        let batch = TraceStats::compute(&NormalizedTrace::new("e", m, vec![]));
        assert_eq!(b.stats(), batch);
    }

    #[test]
    fn single_job_window_matches_batch() {
        let m = machine(16);
        let jobs = varied_jobs(1);
        let mut b = WindowStatsBuilder::new("s", m);
        b.push(&jobs[0]);
        let batch = TraceStats::compute(&NormalizedTrace::new("s", m, jobs));
        assert_eq!(b.stats(), batch);
        // No second arrival, so no inter-arrival statistics.
        assert_eq!(b.stats().interarrival_median, None);
    }

    #[test]
    fn sealing_is_repeatable_and_nondestructive() {
        let m = machine(8);
        let mut b = WindowStatsBuilder::new("w", m);
        for j in varied_jobs(10) {
            b.push(&j);
        }
        let first = b.stats();
        assert_eq!(first, b.stats());
        assert_eq!(b.len(), 10);
    }
}
