//! Offline, API-compatible subset of the `criterion` 0.5 crate.
//!
//! The build environment has no crates.io access, so the benchmarking API
//! this workspace uses is vendored here (see `vendor/README.md`). This is a
//! real wall-clock harness — warm-up, calibrated iterations-per-sample,
//! multiple samples, min/median/mean/max reporting — but without criterion's
//! statistical machinery (no bootstrap confidence intervals, outlier
//! classification, HTML plots, or saved baselines). Numbers it prints are
//! honest medians and are what EXPERIMENTS.md records.
//!
//! Supported: [`Criterion`] (`sample_size`, `warm_up_time`,
//! `measurement_time`, `bench_function`, `benchmark_group`),
//! [`BenchmarkGroup`] (`throughput`, `bench_function`, `bench_with_input`,
//! `finish`), [`BenchmarkId`], [`Throughput`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (both forms). A first
//! non-flag CLI argument is a substring filter on benchmark names, so
//! `cargo bench --bench coplot_bench -- mds` works as with upstream.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark-harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Upstream defaults are 100 samples / 3 s / 5 s; the suites in
            // this workspace always shrink these, so the defaults matter
            // little, but keep them in the same spirit.
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (each sample runs a calibrated
    /// number of iterations).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// How long to run the routine before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Restrict to benchmarks whose full name contains `filter`.
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    fn configure_from_args(mut self) -> Self {
        // `cargo bench` passes `--bench`; a first non-flag argument is a
        // name filter, as with upstream criterion.
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') && self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    fn skip(&self, name: &str) -> bool {
        matches!(&self.filter, Some(f) if !name.contains(f.as_str()))
    }

    /// Benchmark a single routine.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        if !self.skip(name) {
            run_one(name, self.sample_size, self.warm_up_time, self.measurement_time, None, f);
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Shrink this group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Benchmark one routine within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = id.into().full_name(&self.name);
        if !self.criterion.skip(&full) {
            run_one(
                &full,
                self.criterion.sample_size,
                self.criterion.warm_up_time,
                self.criterion.measurement_time,
                self.throughput,
                f,
            );
        }
        self
    }

    /// Benchmark one routine with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// Only a parameter (the group name supplies the function part).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }

    fn full_name(&self, group: &str) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{group}/{f}/{p}"),
            (Some(f), None) => format!("{group}/{f}"),
            (None, Some(p)) => format!("{group}/{p}"),
            (None, None) => group.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId { function: Some(function.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId { function: Some(function), parameter: None }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (jobs, rows, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) with the
/// routine to measure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, timing batches of calls after a warm-up period.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Calibrate iterations per sample so all samples together fill the
        // measurement budget.
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let per_sample_ns = budget_ns / self.sample_size as f64;
        let iters = ((per_sample_ns / est_ns).round() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters as f64);
        }
    }
}

/// Render nanoseconds with criterion-style units.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: F,
) where
    F: FnOnce(&mut Bencher),
{
    let mut b = Bencher { sample_size, warm_up_time, measurement_time, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no measurement: Bencher::iter never called)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  thrpt: {:>12.0} elem/s", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  thrpt: {:>12.0} B/s", n as f64 * 1e9 / median)
        }
        _ => String::new(),
    };
    println!(
        "{name:<44} time: [{} {} {}]{rate}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
    );
}

/// Define a group of benchmark functions, optionally with a configuration
/// expression (upstream's two accepted forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args_pub();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

impl Criterion {
    /// Macro plumbing: apply CLI args (hidden from docs, public for the
    /// expansion of [`criterion_group!`]).
    #[doc(hidden)]
    pub fn configure_from_args_pub(self) -> Self {
        self.configure_from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_routine() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut x = 0u64;
        c.bench_function("trivial", |b| b.iter(|| x = x.wrapping_add(1)));
        assert!(x > 0);
    }

    #[test]
    fn group_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(8).full_name("g"), "g/8");
        assert_eq!(BenchmarkId::new("f", 8).full_name("g"), "g/f/8");
        assert_eq!(BenchmarkId::from("f").full_name("g"), "g/f");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion::default().with_filter("mds");
        assert!(c.skip("normalize_20x18"));
        assert!(!c.skip("mds_restart_ablation/8"));
    }
}
