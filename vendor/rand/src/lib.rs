//! Offline, API-compatible subset of the `rand` 0.8 crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` APIs the workspace actually uses are vendored here
//! (see `vendor/README.md`). The generators are real ChaCha stream ciphers
//! ([`chacha`]), not toy LCGs: `StdRng` is ChaCha with 12 rounds, exactly
//! like upstream `rand` 0.8. Only the *byte streams* may differ from
//! upstream (seed expansion and word order are simplified), which is fine
//! because nothing in the workspace hard-codes expected random values —
//! determinism for a fixed seed within this workspace is what matters.

pub mod chacha;
pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// The core of every random number generator: a source of random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array for every generator here).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed, expanding it with SplitMix64 exactly
    /// like `rand_core`'s default implementation does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a generator with `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the upstream
    /// `Standard` distribution's multiply-based conversion).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Rounding can land exactly on `end` when the span is tiny.
        if v < self.end { v } else { self.start }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v < self.end { v } else { self.start }
    }
}

/// Uniform integer in `[0, span)` by widening multiply (no modulo bias
/// worth worrying about at these spans).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: any value is in range.
                    return <$t as Standard>::sample_standard(rng);
                }
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods on every generator (upstream's `Rng` extension
/// trait).
pub trait Rng: RngCore {
    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }

    /// Fill a slice of primitives with random values.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample_standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let k = rng.gen_range(3usize..12);
            assert!((3..12).contains(&k));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
