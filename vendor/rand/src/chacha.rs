//! The ChaCha stream cipher as a random number generator.
//!
//! This is D. J. Bernstein's ChaCha block function (the same core upstream
//! `rand_chacha` 0.3 uses) with 8, 12, or 20 rounds. A 256-bit key (the
//! seed) plus a 64-bit block counter produce 16 words of output per block;
//! the generator walks the counter, so the stream is deterministic in the
//! seed and has a period far beyond anything a test suite can consume.

use crate::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: mixes `input` for `rounds` rounds and adds the input
/// back (the standard feed-forward).
fn chacha_block(input: &[u32; 16], rounds: u32) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input.iter()) {
        *o = o.wrapping_add(*i);
    }
    x
}

/// ChaCha keyed by a 256-bit seed, parameterized by round count.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: u32> {
    /// The 16-word input block: constants, key, counter, nonce.
    input: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

impl<const ROUNDS: u32> ChaChaRng<ROUNDS> {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        self.block = chacha_block(&self.input, ROUNDS);
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.input[12] as u64 | ((self.input[13] as u64) << 32)).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
    }
}

impl<const ROUNDS: u32> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&Self::SIGMA);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaChaRng {
            input,
            block: [0; 16],
            index: 16,
        }
    }
}

impl<const ROUNDS: u32> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// ChaCha with 8 rounds (fastest member of the family).
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds (upstream `StdRng`'s choice).
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds (the original cipher).
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 section 2.3.2 test vector for the 20-round block function.
    #[test]
    fn rfc7539_block_vector() {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&ChaCha20Rng::SIGMA);
        // Key 00 01 02 ... 1f.
        let key: Vec<u8> = (0u8..32).collect();
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        input[12] = 0x0000_0001; // counter
        input[13] = 0x0900_0000; // nonce
        input[14] = 0x4a00_0000;
        input[15] = 0x0000_0000;
        let out = chacha_block(&input, 20);
        assert_eq!(out[0], 0xe4e7_f110);
        assert_eq!(out[1], 0x1559_3bd1);
        assert_eq!(out[15], 0x4e3c_50a2);
    }

    #[test]
    fn rounds_differ() {
        let a = ChaCha8Rng::seed_from_u64(1).next_u64();
        let b = ChaCha12Rng::seed_from_u64(1).next_u64();
        let c = ChaCha20Rng::seed_from_u64(1).next_u64();
        assert!(a != b && b != c);
    }

    #[test]
    fn stream_is_reproducible() {
        let mut a = ChaCha12Rng::seed_from_u64(99);
        let mut b = ChaCha12Rng::seed_from_u64(99);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        // Consume 3 blocks' worth of words; all distinct blocks.
        let words: Vec<u32> = (0..48).map(|_| rng.next_u32()).collect();
        assert_ne!(&words[0..16], &words[16..32]);
        assert_ne!(&words[16..32], &words[32..48]);
    }
}
