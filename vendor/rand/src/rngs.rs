//! Standard generators.

use crate::chacha::ChaCha12Rng;
use crate::{RngCore, SeedableRng};

/// The standard general-purpose generator: ChaCha with 12 rounds, the same
/// algorithm upstream `rand` 0.8 uses for its `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng(ChaCha12Rng);

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(ChaCha12Rng::from_seed(seed))
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}
