//! Offline, API-compatible subset of the `rand_chacha` 0.3 crate.
//!
//! The actual ChaCha implementation lives in the vendored `rand` crate's
//! [`chacha`](rand::chacha) module; this crate just re-exports the generator
//! types under the names downstream code imports from `rand_chacha`.

pub use rand::chacha::{ChaCha12Rng, ChaCha20Rng, ChaCha8Rng};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn chacha8_is_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
