//! Offline, API-compatible subset of the `proptest` 1.x crate.
//!
//! The build environment has no crates.io access, so the slice of proptest
//! this workspace uses is vendored here (see `vendor/README.md`):
//! the [`proptest!`] macro with `#![proptest_config(..)]`, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `prop_filter`, range and tuple strategies,
//! [`collection::vec`], [`bool::ANY`], [`Just`](strategy::Just),
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Intentional simplifications relative to upstream:
//! - No shrinking: a failing case panics with the generated inputs left to
//!   the assertion message, rather than being minimized first.
//! - String strategies (`"regex" `) do not interpret the regex; any string
//!   pattern yields arbitrary mostly-printable text of bounded length,
//!   which is what the parser-fuzz tests here need.
//! - Each test's RNG is seeded from a hash of the test's module path, so
//!   runs are fully deterministic.

pub mod strategy;
pub mod test_runner;

/// Run-loop configuration (subset: only `cases`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Collection strategies (subset: [`vec`](collection::vec)).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy `element` and `size` elements
    /// (an exact count or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (subset: [`ANY`](bool::ANY)).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; on failure the run panics (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Pick uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests. Supports the `#![proptest_config(..)]` inner
/// attribute and one or more `fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}
