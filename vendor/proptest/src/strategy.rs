//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest, a strategy here is just a generator: there is
/// no value tree and no shrinking. `generate` must be deterministic in the
/// RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map: f }
    }

    /// Build a second strategy from each generated value and draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, make: f }
    }

    /// Keep only values for which `f` returns `true`, retrying generation
    /// otherwise. `whence` is quoted if the filter starves.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence: whence.into(), keep: f }
    }

    /// Type-erase this strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    make: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.make)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: String,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Generous retry budget: filters in this workspace reject rarely.
        for _ in 0..1_000 {
            let v = self.source.generate(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!("prop_filter starved after 1000 rejections: {}", self.whence);
    }
}

/// Uniform choice among type-erased strategies; see
/// [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String "regex" strategy. The pattern is NOT interpreted: any `&str`
/// strategy yields arbitrary mostly-printable text (ASCII, some unicode,
/// rare newlines/tabs) of length 0..=48, which is what the parser-fuzz
/// properties in this workspace need from patterns like `"\\PC*"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        const EXTRA: &[char] = &['é', 'λ', '中', '\u{1F600}', 'ß', '€'];
        let len = rng.gen_range(0usize..=48);
        (0..len)
            .map(|_| match rng.gen_range(0u32..100) {
                0..=84 => rng.gen_range(0x20u32..0x7F) as u8 as char,
                85..=92 => EXTRA[rng.gen_range(0..EXTRA.len())],
                93..=96 => '\n',
                _ => '\t',
            })
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rng_for("strategy::ranges");
        for _ in 0..500 {
            let x = (1.5f64..9.0).generate(&mut rng);
            assert!((1.5..9.0).contains(&x));
            let k = (4usize..=9).generate(&mut rng);
            assert!((4..=9).contains(&k));
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let mut rng = rng_for("strategy::compose");
        let s = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n))
            .prop_filter("nonempty", |v| !v.is_empty())
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.generate(&mut rng);
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut rng = rng_for("strategy::oneof");
        let s = crate::prop_oneof![Just(-1.0f64), 2.0f64..3.0];
        let (mut neg, mut pos) = (0, 0);
        for _ in 0..200 {
            if s.generate(&mut rng) < 0.0 {
                neg += 1;
            } else {
                pos += 1;
            }
        }
        assert!(neg > 0 && pos > 0);
    }
}
