//! Deterministic RNG plumbing for the vendored proptest.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// A deterministic RNG seeded from a test's fully qualified name, so every
/// property runs the same cases on every invocation.
pub fn rng_for(name: &str) -> TestRng {
    // FNV-1a over the name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_name_same_stream() {
        let mut a = rng_for("x::y");
        let mut b = rng_for("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for("x::z");
        assert_ne!(rng_for("x::y").next_u64(), c.next_u64());
    }
}
